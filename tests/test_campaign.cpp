// Campaign-engine tests: spec expansion, the thread pool, worker-count
// determinism (including the byte-identical-JSON contract the report layer
// promises), error propagation, and the JSON/CSV sinks.
//
// The determinism cases here are the ones scripts/check_tsan.sh runs under
// -fsanitize=thread to race-check the pool.

#include "radiobcast/campaign/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "radiobcast/campaign/report.h"
#include "radiobcast/campaign/spec.h"
#include "radiobcast/campaign/thread_pool.h"

namespace rbcast {
namespace {

// A ≥200-trial random-fault threshold sweep, small enough to run in seconds:
// 5 budgets x 40 reps on a 12x12 torus at r=1.
CampaignSpec random_fault_sweep() {
  CampaignSpec spec;
  spec.base.width = spec.base.height = 12;
  spec.base.r = 1;
  spec.base.protocol = ProtocolKind::kCrashFlood;
  spec.base.adversary = AdversaryKind::kSilent;
  spec.placement.random_target = -1;
  spec.placements = {PlacementKind::kRandomBounded};
  spec.budgets = {0, 1, 2, 3, 4};
  spec.reps = 40;
  spec.base_seed = 2026;
  return spec;
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after wait_idle.
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 110);
}

TEST(ThreadPool, HardwareWorkersIsPositive) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(CampaignSpec, ExpandIsCartesianWithBaseDefaults) {
  CampaignSpec spec;
  spec.protocols = {ProtocolKind::kCrashFlood, ProtocolKind::kCpa};
  spec.budgets = {1, 2, 3};
  spec.reps = 4;
  spec.base.width = spec.base.height = 16;
  EXPECT_EQ(spec.cell_count(), 6u);
  EXPECT_EQ(spec.trial_count(), 24u);
  const std::vector<CampaignCell> cells = spec.expand();
  ASSERT_EQ(cells.size(), 6u);
  // Protocol is the slower axis; budgets cycle fastest.
  EXPECT_EQ(cells[0].sim.protocol, ProtocolKind::kCrashFlood);
  EXPECT_EQ(cells[0].sim.t, 1);
  EXPECT_EQ(cells[2].sim.t, 3);
  EXPECT_EQ(cells[3].sim.protocol, ProtocolKind::kCpa);
  EXPECT_EQ(cells[3].sim.t, 1);
  // Unswept values come from the base config.
  EXPECT_EQ(cells[5].sim.width, 16);
  EXPECT_EQ(cells[5].reps, 4);
  // Labels name only the swept axes.
  EXPECT_EQ(cells[0].label, "protocol=crash-flood t=1");
  // Cell seeds are distinct and deterministic.
  std::set<std::uint64_t> seeds;
  for (const CampaignCell& cell : cells) seeds.insert(cell.sim.seed);
  EXPECT_EQ(seeds.size(), cells.size());
  EXPECT_EQ(cells[0].sim.seed, hash_seeds(spec.base_seed, 0));
  EXPECT_EQ(cells[5].sim.seed, hash_seeds(spec.base_seed, 5));
}

TEST(CampaignSpec, EmptyAxesYieldOneBaseCell) {
  CampaignSpec spec;
  spec.reps = 2;
  EXPECT_EQ(spec.cell_count(), 1u);
  const std::vector<CampaignCell> cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].label, "");
  EXPECT_EQ(cells[0].sim.protocol, spec.base.protocol);
}

TEST(CampaignEngine, RunRepeatedUnchangedByRewire) {
  // The engine-backed run_repeated must reproduce the historical seed
  // stream hash_seeds(base.seed, rep): spot-check against a hand-rolled
  // serial loop over the same seeds.
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.t = 2;
  cfg.seed = 7;
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  placement.random_target = 5;
  const Aggregate agg = run_repeated(cfg, placement, 4);

  Aggregate manual;
  const Torus torus(cfg.width, cfg.height);
  for (int i = 0; i < 4; ++i) {
    SimConfig trial = cfg;
    trial.seed = hash_seeds(cfg.seed, static_cast<std::uint64_t>(i));
    Rng rng(trial.seed);
    const FaultSet faults = make_faults(placement, torus, trial.r,
                                        trial.metric, trial.t, trial.source,
                                        rng);
    const SimResult result = run_simulation(trial, faults);
    manual.add(summarize_trial(
        result, static_cast<std::int64_t>(faults.size()),
        max_closed_nbd_faults(torus, faults, trial.r, trial.metric)));
  }
  EXPECT_EQ(agg.runs, manual.runs);
  EXPECT_EQ(agg.successes, manual.successes);
  EXPECT_EQ(agg.correct_total, manual.correct_total);
  EXPECT_EQ(agg.transmissions_total, manual.transmissions_total);
  EXPECT_EQ(agg.fault_total, manual.fault_total);
  EXPECT_EQ(agg.min_coverage, manual.min_coverage);
}

TEST(CampaignEngine, DeterministicAcrossWorkerCounts) {
  // Acceptance bar for the subsystem: a ≥200-trial random-fault sweep yields
  // identical per-cell aggregates and seeds at 1 worker and at 8.
  const CampaignSpec spec = random_fault_sweep();
  ASSERT_GE(spec.trial_count(), 200u);

  CampaignOptions serial;
  serial.workers = 1;
  CampaignOptions parallel;
  parallel.workers = 8;
  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, parallel);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.trial_count, b.trial_count);
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].seeds, b.cells[c].seeds) << "cell " << c;
    const Aggregate& x = a.cells[c].aggregate;
    const Aggregate& y = b.cells[c].aggregate;
    EXPECT_EQ(x.runs, y.runs) << "cell " << c;
    EXPECT_EQ(x.successes, y.successes) << "cell " << c;
    EXPECT_EQ(x.correct_total, y.correct_total) << "cell " << c;
    EXPECT_EQ(x.honest_total, y.honest_total) << "cell " << c;
    EXPECT_EQ(x.wrong_total, y.wrong_total) << "cell " << c;
    EXPECT_EQ(x.rounds_total, y.rounds_total) << "cell " << c;
    EXPECT_EQ(x.transmissions_total, y.transmissions_total) << "cell " << c;
    EXPECT_EQ(x.fault_total, y.fault_total) << "cell " << c;
    EXPECT_EQ(x.min_coverage, y.min_coverage) << "cell " << c;
    EXPECT_EQ(x.max_nbd_faults, y.max_nbd_faults) << "cell " << c;
    // Observability counters are part of the deterministic payload: the
    // summed Counters must be bit-identical at 1 and 8 workers.
    EXPECT_EQ(x.counters_total, y.counters_total) << "cell " << c;
  }
  // The exported artifacts are byte-identical: the payload excludes
  // wall-clock and worker-count stats by design (counters included,
  // phase timers excluded).
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(to_csv(a), to_csv(b));
}

TEST(CampaignEngine, CountersMergeAssociatively) {
  // Splitting a repeated run into ranges and merging the partial aggregates
  // must reproduce the unsplit counters exactly — same contract as the other
  // integer-sum fields, now for every Counters field.
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.adversary = AdversaryKind::kLying;
  cfg.t = 1;
  cfg.seed = 99;
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  placement.random_target = 4;

  const Aggregate whole = run_repeated(cfg, placement, 10);
  EXPECT_GT(whole.counters_total.broadcasts_queued, 0u);
  EXPECT_GT(whole.counters_total.commits, 0u);

  Aggregate merged = run_repeated_range(cfg, placement, 0, 3);
  merged.merge(run_repeated_range(cfg, placement, 3, 7));
  EXPECT_EQ(whole.counters_total, merged.counters_total);

  // Merging in a different grouping gives the same counters (associativity).
  Aggregate regrouped = run_repeated_range(cfg, placement, 0, 7);
  regrouped.merge(run_repeated_range(cfg, placement, 7, 3));
  EXPECT_EQ(whole.counters_total, regrouped.counters_total);
}

TEST(CampaignEngine, TraceDirByteIdenticalAcrossWorkerCounts) {
  // --trace-dir contract: per-trial JSONL traces are a pure function of the
  // spec, so the full directory contents match byte for byte at any worker
  // count.
  CampaignSpec spec = random_fault_sweep();
  spec.budgets = {1, 2};
  spec.reps = 4;

  const auto root = std::filesystem::temp_directory_path();
  const std::string dir1 = (root / "rbcast_trace_w1").string();
  const std::string dir8 = (root / "rbcast_trace_w8").string();
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir8);

  CampaignOptions serial;
  serial.workers = 1;
  serial.trace_dir = dir1;
  CampaignOptions parallel;
  parallel.workers = 8;
  parallel.trace_dir = dir8;
  run_campaign(spec, serial);
  run_campaign(spec, parallel);

  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir1)) {
    const auto name = entry.path().filename();
    std::ifstream a(entry.path());
    std::ifstream b(std::filesystem::path(dir8) / name);
    ASSERT_TRUE(b.good()) << "missing " << name;
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    const std::string text = sa.str();
    EXPECT_EQ(text, sb.str()) << name;
    // Traces are non-trivial and JSONL-shaped.
    EXPECT_NE(text.find("{\"event\":\"round_started\",\"round\":1}"),
              std::string::npos);
    EXPECT_NE(text.find("\"event\":\"node_committed\""), std::string::npos);
    ++files;
  }
  EXPECT_EQ(files, spec.trial_count());
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir8);
}

TEST(CampaignEngine, ProgressReportsEveryTrialOnce) {
  CampaignSpec spec = random_fault_sweep();
  spec.budgets = {2};
  spec.reps = 12;
  CampaignOptions options;
  options.workers = 4;
  std::size_t calls = 0;
  std::size_t last_done = 0;
  options.progress = [&](std::size_t done, std::size_t total) {
    // Serialized by the engine's mutex: done increments by exactly 1.
    EXPECT_EQ(done, last_done + 1);
    EXPECT_EQ(total, 12u);
    last_done = done;
    ++calls;
  };
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_EQ(calls, 12u);
  EXPECT_EQ(last_done, 12u);
  EXPECT_EQ(result.trial_count, 12u);
  EXPECT_EQ(result.workers_used, 4);
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(CampaignEngine, TrialExceptionsPropagateToCaller) {
  CampaignCell bad;
  bad.sim.width = bad.sim.height = 6;  // below the 4r+2 floor for r=2
  bad.sim.r = 2;
  bad.reps = 3;
  for (const int workers : {1, 4}) {
    CampaignOptions options;
    options.workers = workers;
    EXPECT_THROW(run_cells({bad}, options), std::invalid_argument)
        << workers << " workers";
  }
}

// Regression: with several failing cells in flight, abort must surface the
// error of the deterministically lowest (cell, rep) trial — not whichever
// worker happened to fail first.
TEST(CampaignEngine, AbortSurfacesLowestFailingTrialError) {
  CampaignCell metric_clash;  // earmarked relays reject the L2 metric
  metric_clash.sim.width = metric_clash.sim.height = 20;
  metric_clash.sim.r = 2;
  metric_clash.sim.protocol = ProtocolKind::kBvIndirectEarmarked;
  metric_clash.sim.metric = Metric::kL2;
  metric_clash.reps = 2;
  CampaignCell tiny_torus;  // below the 4r+2 geometry floor
  tiny_torus.sim.width = tiny_torus.sim.height = 6;
  tiny_torus.sim.r = 2;
  tiny_torus.reps = 2;
  for (const int workers : {1, 4}) {
    for (const bool flipped : {false, true}) {
      const std::vector<CampaignCell> cells =
          flipped ? std::vector<CampaignCell>{tiny_torus, metric_clash}
                  : std::vector<CampaignCell>{metric_clash, tiny_torus};
      const std::string expected = flipped ? "torus sides must be at least 4r+2"
                                           : "earmarked relays require the "
                                             "L-infinity metric";
      CampaignOptions options;
      options.workers = workers;
      try {
        run_cells(cells, options);
        FAIL() << "expected run_cells to throw";
      } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string(e.what()), expected)
            << workers << " workers, flipped=" << flipped;
      }
    }
  }
}

TEST(CampaignEngine, TotalMergesAllCells) {
  CampaignSpec spec = random_fault_sweep();
  spec.reps = 3;
  const CampaignResult result = run_campaign(spec, {});
  const Aggregate total = result.total();
  EXPECT_EQ(total.runs, static_cast<int>(result.trial_count));
  std::int64_t rounds = 0;
  for (const CellResult& cell : result.cells) {
    rounds += cell.aggregate.rounds_total;
  }
  EXPECT_EQ(total.rounds_total, rounds);
}

TEST(CampaignReport, JsonShapeAndEscaping) {
  CampaignSpec spec;
  spec.base.width = spec.base.height = 12;
  spec.base.r = 1;
  spec.base.protocol = ProtocolKind::kCrashFlood;
  spec.placements = {PlacementKind::kNone};
  spec.reps = 2;
  const CampaignResult result = run_campaign(spec, {});
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"schema\":\"radiobcast-campaign-v5\""),
            std::string::npos);
  EXPECT_NE(json.find("\"failures\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"trials\":2"), std::string::npos);
  EXPECT_NE(json.find("\"protocol\":\"crash-flood\""), std::string::npos);
  EXPECT_NE(json.find("\"placement\":\"none\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  // Fault-free flooding covers everything.
  EXPECT_NE(json.find("\"mean_coverage\":1"), std::string::npos);
  // Timing stats must not leak into the deterministic payload.
  EXPECT_EQ(json.find("wall"), std::string::npos);
  EXPECT_EQ(json.find("workers"), std::string::npos);

  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(-41.0), "-41");
  EXPECT_EQ(json_number(0.5), "0.5");
}

TEST(CampaignReport, CsvHasHeaderPlusOneRowPerCell) {
  CampaignSpec spec = random_fault_sweep();
  spec.budgets = {0, 1};
  spec.reps = 2;
  const CampaignResult result = run_campaign(spec, {});
  const std::string csv = to_csv(result);
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1u + result.cells.size());
  EXPECT_EQ(csv.compare(0, 5, "label"), 0);
  EXPECT_NE(csv.find("crash-flood"), std::string::npos);
  EXPECT_NE(csv.find("random-bounded"), std::string::npos);
}

}  // namespace
}  // namespace rbcast
