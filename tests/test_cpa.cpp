#include "radiobcast/protocols/cpa.h"

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"

namespace rbcast {
namespace {

SimConfig base_config(std::int32_t r) {
  SimConfig cfg;
  cfg.width = cfg.height = 8 * r + 4;
  cfg.r = r;
  cfg.metric = Metric::kLInf;
  cfg.protocol = ProtocolKind::kCpa;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = 9;
  return cfg;
}

TEST(Cpa, FaultFreeFullCoverageAtTZero) {
  for (std::int32_t r = 1; r <= 3; ++r) {
    const auto result = run_simulation(base_config(r), FaultSet{});
    EXPECT_TRUE(result.success()) << "r=" << r;
  }
}

TEST(Cpa, FaultFreeFullCoverageAtTheoremSixBudget) {
  // Even with t set to the Theorem 6 bound the protocol must progress when
  // no faults exist (every node has far more than t+1 committed neighbors).
  for (std::int32_t r = 2; r <= 4; ++r) {
    SimConfig cfg = base_config(r);
    cfg.t = cpa_linf_achievable_max(r);
    const auto result = run_simulation(cfg, FaultSet{});
    EXPECT_TRUE(result.success()) << "r=" << r;
  }
}

TEST(Cpa, SurvivesRandomFaultsAtTheoremSixBudget) {
  // Theorem 6: t <= 2r^2/3 is always survivable.
  for (std::int32_t r = 2; r <= 3; ++r) {
    SimConfig cfg = base_config(r);
    cfg.t = cpa_linf_achievable_max(r);
    PlacementConfig placement;
    placement.kind = PlacementKind::kRandomBounded;
    for (int rep = 0; rep < 3; ++rep) {
      Torus torus(cfg.width, cfg.height);
      Rng rng(50 + static_cast<std::uint64_t>(rep));
      const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                          cfg.t, cfg.source, rng);
      const auto result = run_simulation(cfg, faults);
      EXPECT_TRUE(result.success()) << "r=" << r << " rep=" << rep;
      EXPECT_EQ(result.wrong_commits, 0);
    }
  }
}

TEST(Cpa, LyingAdversaryNeverCausesWrongCommit) {
  SimConfig cfg = base_config(2);
  cfg.adversary = AdversaryKind::kLying;
  cfg.t = cpa_linf_achievable_max(2);
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  for (int rep = 0; rep < 4; ++rep) {
    Torus torus(cfg.width, cfg.height);
    Rng rng(70 + static_cast<std::uint64_t>(rep));
    const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    const auto result = run_simulation(cfg, faults);
    EXPECT_EQ(result.wrong_commits, 0) << "rep=" << rep;
  }
}

TEST(Cpa, BehaviorUnitNeedsTPlusOneClaims) {
  const Torus torus(12, 12);
  RadioNetwork net(torus, 1, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<CpaBehavior>(ProtocolParams{2, {0, 0}}));
  }
  const Coord self{6, 6};
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<CpaBehavior*>(net.behavior(self));
  b->on_receive(ctx, {{5, 5}, make_committed({5, 5}, 1)});
  b->on_receive(ctx, {{5, 6}, make_committed({5, 6}, 1)});
  EXPECT_FALSE(b->committed_value().has_value());  // only 2 claims, t+1 = 3
  b->on_receive(ctx, {{5, 7}, make_committed({5, 7}, 1)});
  EXPECT_EQ(b->committed_value(), std::optional<std::uint8_t>(1));
}

TEST(Cpa, BehaviorUnitFirstClaimPerNeighborWins) {
  const Torus torus(12, 12);
  RadioNetwork net(torus, 1, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<CpaBehavior>(ProtocolParams{1, {0, 0}}));
  }
  const Coord self{6, 6};
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<CpaBehavior*>(net.behavior(self));
  // The same neighbor repeating does not add claims.
  b->on_receive(ctx, {{5, 5}, make_committed({5, 5}, 1)});
  b->on_receive(ctx, {{5, 5}, make_committed({5, 5}, 1)});
  EXPECT_FALSE(b->committed_value().has_value());
  // A contradictory second value from the same node is ignored outright.
  b->on_receive(ctx, {{5, 5}, make_committed({5, 5}, 0)});
  b->on_receive(ctx, {{5, 6}, make_committed({5, 6}, 0)});
  EXPECT_FALSE(b->committed_value().has_value());
  b->on_receive(ctx, {{5, 7}, make_committed({5, 7}, 1)});
  EXPECT_EQ(b->committed_value(), std::optional<std::uint8_t>(1));
}

TEST(Cpa, BehaviorUnitIgnoresSpoofedOrigins) {
  const Torus torus(12, 12);
  RadioNetwork net(torus, 1, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<CpaBehavior>(ProtocolParams{0, {0, 0}}));
  }
  const Coord self{6, 6};
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<CpaBehavior*>(net.behavior(self));
  // Claims whose origin field does not match the transmitter are dropped.
  b->on_receive(ctx, {{5, 5}, make_committed({4, 4}, 1)});
  EXPECT_FALSE(b->committed_value().has_value());
}

TEST(Cpa, BehaviorUnitSourceNeighborCommitsImmediately) {
  const Torus torus(12, 12);
  RadioNetwork net(torus, 1, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<CpaBehavior>(ProtocolParams{5, {0, 0}}));
  }
  const Coord self{1, 1};
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<CpaBehavior*>(net.behavior(self));
  b->on_receive(ctx, {{0, 0}, make_committed({0, 0}, 1)});
  EXPECT_EQ(b->committed_value(), std::optional<std::uint8_t>(1));
}

}  // namespace
}  // namespace rbcast
