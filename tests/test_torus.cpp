#include "radiobcast/grid/torus.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rbcast {
namespace {

TEST(Torus, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Torus(0, 5), std::invalid_argument);
  EXPECT_THROW(Torus(5, -1), std::invalid_argument);
}

TEST(Torus, WrapCanonicalizes) {
  const Torus t(10, 8);
  EXPECT_EQ(t.wrap({0, 0}), (Coord{0, 0}));
  EXPECT_EQ(t.wrap({10, 8}), (Coord{0, 0}));
  EXPECT_EQ(t.wrap({-1, -1}), (Coord{9, 7}));
  EXPECT_EQ(t.wrap({23, -17}), (Coord{3, 7}));
}

TEST(Torus, IndexRoundTrip) {
  const Torus t(7, 5);
  for (std::int32_t i = 0; i < t.node_count(); ++i) {
    EXPECT_EQ(t.index(t.coord(i)), i);
  }
}

TEST(Torus, IndexOfWrappedCoord) {
  const Torus t(7, 5);
  EXPECT_EQ(t.index({-1, 0}), t.index({6, 0}));
  EXPECT_EQ(t.index({0, -1}), t.index({0, 4}));
}

TEST(Torus, DeltaIsMinimal) {
  const Torus t(10, 10);
  EXPECT_EQ(t.delta({0, 0}, {1, 0}), (Offset{1, 0}));
  EXPECT_EQ(t.delta({0, 0}, {9, 0}), (Offset{-1, 0}));
  EXPECT_EQ(t.delta({0, 0}, {0, 9}), (Offset{0, -1}));
  EXPECT_EQ(t.delta({9, 9}, {0, 0}), (Offset{1, 1}));
  // Exactly half the dimension: convention picks +dim/2.
  EXPECT_EQ(t.delta({0, 0}, {5, 0}), (Offset{5, 0}));
  EXPECT_EQ(t.delta({0, 0}, {0, 5}), (Offset{0, 5}));
}

TEST(Torus, DeltaAntisymmetricOffHalf) {
  const Torus t(11, 9);
  const Coord a{2, 3}, b{9, 7};
  const Offset d = t.delta(a, b);
  EXPECT_EQ(t.delta(b, a), -d);
  EXPECT_EQ(t.wrap(a + d), b);
}

TEST(Torus, DeltaComponentsWithinHalf) {
  const Torus t(12, 10);
  for (const Coord a : t.all_coords()) {
    const Offset d = t.delta({0, 0}, a);
    EXPECT_GT(d.dx, -6);
    EXPECT_LE(d.dx, 6);
    EXPECT_GT(d.dy, -5);
    EXPECT_LE(d.dy, 5);
  }
}

TEST(Torus, WithinAcrossSeam) {
  const Torus t(20, 20);
  EXPECT_TRUE(t.within({0, 0}, {19, 19}, 1, Metric::kLInf));
  EXPECT_TRUE(t.within({0, 0}, {18, 0}, 2, Metric::kLInf));
  EXPECT_FALSE(t.within({0, 0}, {17, 0}, 2, Metric::kLInf));
  EXPECT_TRUE(t.within({0, 0}, {19, 0}, 1, Metric::kL2));
  EXPECT_FALSE(t.within({0, 0}, {19, 19}, 1, Metric::kL2));
}

TEST(Torus, AllCoordsMatchesIndexOrder) {
  const Torus t(4, 3);
  const auto all = t.all_coords();
  ASSERT_EQ(all.size(), 12u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(t.index(all[i]), static_cast<std::int32_t>(i));
  }
}

TEST(Torus, NodeCount) {
  EXPECT_EQ(Torus(20, 30).node_count(), 600);
  EXPECT_EQ(Torus(1, 1).node_count(), 1);
}

}  // namespace
}  // namespace rbcast
