// Sim/runtime equivalence: the same protocol objects, run once under the
// discrete-event simulator and once as threads over real loopback UDP
// sockets, must produce identical per-node verdicts — same committed value,
// same commit round, for every node — and they must do so under BOTH event
// backends (the 50us poll loop and the epoll readiness loop), which is the
// test that the event engine only changes when nodes wake, never what they
// observe.
//
// Why this holds (docs/RUNTIME.md has the full argument): the runtime tags
// every broadcast with its TDMA round, the perfect link delivers per-sender
// FIFO, and the round synchronizer releases each round's traffic in the
// simulator's delivery order (sender index ascending, per-sender FIFO) only
// after every neighbor's ROUND_DONE marker confirms the round is complete.
// Both backends populate nodes with the same make_node_behavior recipe and
// run the same default_round_bound horizon, so each behavior observes a
// byte-identical event sequence on both backends.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "radiobcast/core/simulation.h"
#include "radiobcast/runtime/harness.h"

namespace rbcast {
namespace {

struct EquivalenceCase {
  const char* name;
  ProtocolKind protocol;
  AdversaryKind adversary;
  std::int64_t t;
  std::vector<Coord> faults;
  /// Message-level loss (the simulator's pairwise channel, replicated
  /// sender-side by the runtime). 0 = perfect channel.
  double loss_p = 0.0;
  /// Unbounded jamming when < 0 (faults double as jammer coordinates).
  std::int64_t jam_budget = 0;
};

Scenario make_scenario(const EquivalenceCase& param, RuntimeBackend backend) {
  Scenario scenario;
  scenario.sim.width = 8;
  scenario.sim.height = 8;
  scenario.sim.r = 1;
  scenario.sim.metric = Metric::kLInf;
  scenario.sim.t = param.t;
  scenario.sim.protocol = param.protocol;
  scenario.sim.adversary = param.adversary;
  scenario.sim.value = 1;
  scenario.sim.source = {0, 0};
  scenario.sim.seed = 12345;
  scenario.sim.max_rounds = 0;  // both backends use default_round_bound
  if (param.loss_p > 0.0) {
    scenario.sim.loss_p = param.loss_p;
    // The per-pair streams are the only loss process a distributed node can
    // replicate without shared state (tests/test_runtime_chaos.cpp).
    scenario.sim.loss_model = LossModel::kPairwise;
  }
  scenario.sim.jam_budget = param.jam_budget;
  scenario.faults = param.faults;
  scenario.backend = backend;
  // Equivalence runs barrier forever: on loopback with threads all peers are
  // alive, and a timeout would make delivery timing-dependent.
  scenario.round_timeout_ms = 0;
  scenario.linger_timeout_ms = 2000;
  return scenario;
}

const std::vector<EquivalenceCase>& all_cases() {
  static const std::vector<EquivalenceCase> cases{
      // Crash-flood tolerates silent faults anywhere; t is the assumed
      // local bound.
      EquivalenceCase{"crash_flood", ProtocolKind::kCrashFlood,
                      AdversaryKind::kSilent, 3,
                      std::vector<Coord>{{3, 3}, {6, 2}, {1, 6}}},
      EquivalenceCase{"cpa", ProtocolKind::kCpa, AdversaryKind::kSilent, 1,
                      std::vector<Coord>{{4, 4}}},
      EquivalenceCase{"bv_2hop", ProtocolKind::kBvTwoHop,
                      AdversaryKind::kLying, 1, std::vector<Coord>{{4, 4}}},
      EquivalenceCase{"bv_4hop_flood", ProtocolKind::kBvIndirectFlood,
                      AdversaryKind::kLying, 1, std::vector<Coord>{{4, 4}}},
      EquivalenceCase{"bv_4hop_earmarked", ProtocolKind::kBvIndirectEarmarked,
                      AdversaryKind::kSilent, 1, std::vector<Coord>{{4, 4}}},
      // Crash-at-round exercises mid-run behavior changes on both
      // backends (the adversary is honest until its crash round).
      EquivalenceCase{"crash_flood_crash_at_round", ProtocolKind::kCrashFlood,
                      AdversaryKind::kCrashAtRound, 3,
                      std::vector<Coord>{{3, 3}, {6, 2}}},
      // Lossy channel: the runtime replays the simulator's pairwise drop
      // schedule message-for-message, on either backend.
      EquivalenceCase{"crash_flood_lossy", ProtocolKind::kCrashFlood,
                      AdversaryKind::kSilent, 3,
                      std::vector<Coord>{{3, 3}, {6, 2}, {1, 6}},
                      /*loss_p=*/0.1},
      // Unbounded jamming: a static geometric blackout around the faults.
      EquivalenceCase{"crash_flood_jammed", ProtocolKind::kCrashFlood,
                      AdversaryKind::kJamming, 1, std::vector<Coord>{{4, 4}},
                      /*loss_p=*/0.0, /*jam_budget=*/-1}};
  return cases;
}

using EquivalenceParam = std::tuple<EquivalenceCase, RuntimeBackend>;

class RuntimeEquivalence : public testing::TestWithParam<EquivalenceParam> {};

TEST_P(RuntimeEquivalence, VerdictsMatchTheSimulatorNodeForNode) {
  const EquivalenceCase& param = std::get<0>(GetParam());
  const RuntimeBackend backend = std::get<1>(GetParam());
  const Scenario scenario = make_scenario(param, backend);

  const SimResult sim = run_simulation(scenario.sim, scenario.fault_set());
  const RuntimeResult rt = run_scenario_threads(scenario);

  // Aggregate verdicts agree.
  EXPECT_EQ(rt.honest_nodes, sim.honest_nodes);
  EXPECT_EQ(rt.correct_commits, sim.correct_commits);
  EXPECT_EQ(rt.wrong_commits, sim.wrong_commits);
  EXPECT_EQ(rt.undecided, sim.undecided);
  EXPECT_FALSE(rt.any_interrupted);

  // Node-for-node: same committed value, same commit round.
  const Torus torus(scenario.sim.width, scenario.sim.height);
  ASSERT_EQ(rt.verdicts.size(), static_cast<std::size_t>(torus.node_count()));
  for (const RuntimeVerdict& v : rt.verdicts) {
    const std::size_t i = static_cast<std::size_t>(v.index);
    const NodeOutcome expected = sim.outcomes[i];
    const std::string where = "node " + std::to_string(v.index) + " (" +
                              std::to_string(v.self.x) + "," +
                              std::to_string(v.self.y) + ") under " +
                              param.name + "/" + to_string(backend);
    switch (expected) {
      case NodeOutcome::kSource:
        EXPECT_EQ(v.role, NodeRole::kSource) << where;
        break;
      case NodeOutcome::kFaulty:
        EXPECT_EQ(v.role, NodeRole::kFaulty) << where;
        break;
      case NodeOutcome::kUndecided:
        EXPECT_EQ(v.role, NodeRole::kHonest) << where;
        EXPECT_FALSE(v.committed.has_value()) << where;
        EXPECT_EQ(v.commit_round, -1) << where;
        break;
      case NodeOutcome::kCommitted0:
      case NodeOutcome::kCommitted1: {
        const std::uint8_t value =
            expected == NodeOutcome::kCommitted1 ? 1 : 0;
        EXPECT_EQ(v.role, NodeRole::kHonest) << where;
        ASSERT_TRUE(v.committed.has_value()) << where;
        EXPECT_EQ(*v.committed, value) << where;
        EXPECT_EQ(v.commit_round, sim.commit_rounds[i]) << where;
        break;
      }
    }
  }

  // The protocol-level traffic counters agree too: both backends host the
  // same behaviors observing the same event sequences, so they queue the
  // same broadcasts and commit the same number of times. (Link-level packet
  // counters are timing-dependent and deliberately not compared.)
  EXPECT_EQ(rt.counters.commits, sim.counters.commits);
  EXPECT_EQ(rt.counters.broadcasts_queued, sim.counters.broadcasts_queued);
  EXPECT_EQ(rt.counters.committed_queued, sim.counters.committed_queued);
  EXPECT_EQ(rt.counters.heard_queued, sim.counters.heard_queued);
  EXPECT_EQ(rt.counters.last_commit_round, sim.counters.last_commit_round);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, RuntimeEquivalence,
    testing::Combine(testing::ValuesIn(all_cases()),
                     testing::Values(RuntimeBackend::kPoll,
                                     RuntimeBackend::kEpoll)),
    [](const testing::TestParamInfo<EquivalenceParam>& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Cross-backend: verdict cores are byte-identical

/// Serializes every verdict's deterministic core into one string.
std::string cores_of(const RuntimeResult& result) {
  std::ostringstream out;
  for (const RuntimeVerdict& v : result.verdicts) {
    write_verdict_core(out, v);
    out << "---\n";
  }
  return out.str();
}

class CrossBackend : public testing::TestWithParam<EquivalenceCase> {};

TEST_P(CrossBackend, VerdictCoresAreByteIdenticalUnderPollAndEpoll) {
  const EquivalenceCase& param = GetParam();
  const RuntimeResult poll =
      run_scenario_threads(make_scenario(param, RuntimeBackend::kPoll));
  const RuntimeResult epoll =
      run_scenario_threads(make_scenario(param, RuntimeBackend::kEpoll));
  EXPECT_EQ(cores_of(poll), cores_of(epoll));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, CrossBackend,
                         testing::ValuesIn(all_cases()),
                         [](const testing::TestParamInfo<EquivalenceCase>&
                                info) { return std::string(info.param.name); });

}  // namespace
}  // namespace rbcast
