// Sim/runtime equivalence: the same protocol objects, run once under the
// discrete-event simulator and once as threads over real loopback UDP
// sockets, must produce identical per-node verdicts — same committed value,
// same commit round, for every node.
//
// Why this holds (docs/RUNTIME.md has the full argument): the runtime tags
// every broadcast with its TDMA round, the perfect link delivers per-sender
// FIFO, and the round synchronizer releases each round's traffic in the
// simulator's delivery order (sender index ascending, per-sender FIFO) only
// after every neighbor's ROUND_DONE marker confirms the round is complete.
// Both backends populate nodes with the same make_node_behavior recipe and
// run the same default_round_bound horizon, so each behavior observes a
// byte-identical event sequence on both backends.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "radiobcast/core/simulation.h"
#include "radiobcast/runtime/harness.h"

namespace rbcast {
namespace {

struct EquivalenceCase {
  const char* name;
  ProtocolKind protocol;
  AdversaryKind adversary;
  std::int64_t t;
  std::vector<Coord> faults;
};

class RuntimeEquivalence : public testing::TestWithParam<EquivalenceCase> {};

TEST_P(RuntimeEquivalence, VerdictsMatchTheSimulatorNodeForNode) {
  const EquivalenceCase& param = GetParam();

  Scenario scenario;
  scenario.sim.width = 8;
  scenario.sim.height = 8;
  scenario.sim.r = 1;
  scenario.sim.metric = Metric::kLInf;
  scenario.sim.t = param.t;
  scenario.sim.protocol = param.protocol;
  scenario.sim.adversary = param.adversary;
  scenario.sim.value = 1;
  scenario.sim.source = {0, 0};
  scenario.sim.seed = 12345;
  scenario.sim.max_rounds = 0;  // both backends use default_round_bound
  scenario.faults = param.faults;
  // Equivalence runs barrier forever: on loopback with threads all peers are
  // alive, and a timeout would make delivery timing-dependent.
  scenario.round_timeout_ms = 0;
  scenario.linger_timeout_ms = 2000;

  const SimResult sim = run_simulation(scenario.sim, scenario.fault_set());
  const RuntimeResult rt = run_scenario_threads(scenario);

  // Aggregate verdicts agree.
  EXPECT_EQ(rt.honest_nodes, sim.honest_nodes);
  EXPECT_EQ(rt.correct_commits, sim.correct_commits);
  EXPECT_EQ(rt.wrong_commits, sim.wrong_commits);
  EXPECT_EQ(rt.undecided, sim.undecided);
  EXPECT_FALSE(rt.any_interrupted);

  // Node-for-node: same committed value, same commit round.
  const Torus torus(scenario.sim.width, scenario.sim.height);
  ASSERT_EQ(rt.verdicts.size(), static_cast<std::size_t>(torus.node_count()));
  for (const RuntimeVerdict& v : rt.verdicts) {
    const std::size_t i = static_cast<std::size_t>(v.index);
    const NodeOutcome expected = sim.outcomes[i];
    const std::string where = "node " + std::to_string(v.index) + " (" +
                              std::to_string(v.self.x) + "," +
                              std::to_string(v.self.y) + ") under " +
                              param.name;
    switch (expected) {
      case NodeOutcome::kSource:
        EXPECT_EQ(v.role, NodeRole::kSource) << where;
        break;
      case NodeOutcome::kFaulty:
        EXPECT_EQ(v.role, NodeRole::kFaulty) << where;
        break;
      case NodeOutcome::kUndecided:
        EXPECT_EQ(v.role, NodeRole::kHonest) << where;
        EXPECT_FALSE(v.committed.has_value()) << where;
        EXPECT_EQ(v.commit_round, -1) << where;
        break;
      case NodeOutcome::kCommitted0:
      case NodeOutcome::kCommitted1: {
        const std::uint8_t value =
            expected == NodeOutcome::kCommitted1 ? 1 : 0;
        EXPECT_EQ(v.role, NodeRole::kHonest) << where;
        ASSERT_TRUE(v.committed.has_value()) << where;
        EXPECT_EQ(*v.committed, value) << where;
        EXPECT_EQ(v.commit_round, sim.commit_rounds[i]) << where;
        break;
      }
    }
  }

  // The protocol-level traffic counters agree too: both backends host the
  // same behaviors observing the same event sequences, so they queue the
  // same broadcasts and commit the same number of times. (Link-level packet
  // counters are timing-dependent and deliberately not compared.)
  EXPECT_EQ(rt.counters.commits, sim.counters.commits);
  EXPECT_EQ(rt.counters.broadcasts_queued, sim.counters.broadcasts_queued);
  EXPECT_EQ(rt.counters.committed_queued, sim.counters.committed_queued);
  EXPECT_EQ(rt.counters.heard_queued, sim.counters.heard_queued);
  EXPECT_EQ(rt.counters.last_commit_round, sim.counters.last_commit_round);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, RuntimeEquivalence,
    testing::Values(
        // Crash-flood tolerates silent faults anywhere; t is the assumed
        // local bound.
        EquivalenceCase{"crash_flood", ProtocolKind::kCrashFlood,
                        AdversaryKind::kSilent, 3,
                        std::vector<Coord>{{3, 3}, {6, 2}, {1, 6}}},
        EquivalenceCase{"cpa", ProtocolKind::kCpa, AdversaryKind::kSilent, 1,
                        std::vector<Coord>{{4, 4}}},
        EquivalenceCase{"bv_2hop", ProtocolKind::kBvTwoHop,
                        AdversaryKind::kLying, 1,
                        std::vector<Coord>{{4, 4}}},
        EquivalenceCase{"bv_4hop_flood", ProtocolKind::kBvIndirectFlood,
                        AdversaryKind::kLying, 1,
                        std::vector<Coord>{{4, 4}}},
        EquivalenceCase{"bv_4hop_earmarked",
                        ProtocolKind::kBvIndirectEarmarked,
                        AdversaryKind::kSilent, 1,
                        std::vector<Coord>{{4, 4}}},
        // Crash-at-round exercises mid-run behavior changes on both
        // backends (the adversary is honest until its crash round).
        EquivalenceCase{"crash_flood_crash_at_round",
                        ProtocolKind::kCrashFlood,
                        AdversaryKind::kCrashAtRound, 3,
                        std::vector<Coord>{{3, 3}, {6, 2}}}),
    [](const testing::TestParamInfo<EquivalenceCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace rbcast
