#include "radiobcast/protocols/byzantine.h"

#include <gtest/gtest.h>

#include "radiobcast/protocols/crash_flood.h"

namespace rbcast {
namespace {

RadioNetwork make_net(std::int32_t side, std::int32_t r) {
  return RadioNetwork(Torus(side, side), r, Metric::kLInf, 1);
}

TEST(Silent, NeverTransmits) {
  auto net = make_net(8, 1);
  for (const Coord c : net.torus().all_coords()) {
    net.set_behavior(c, std::make_unique<SilentBehavior>());
  }
  net.start();
  net.run_round();
  EXPECT_EQ(net.stats().transmissions, 0u);
  EXPECT_FALSE(net.behavior({0, 0})->committed_value().has_value());
}

TEST(Lying, AnnouncesWrongValueAtStart) {
  auto net = make_net(8, 1);
  const Coord liar{3, 3};
  for (const Coord c : net.torus().all_coords()) {
    if (c == liar) {
      net.set_behavior(c, std::make_unique<LyingBehavior>(0));
    } else {
      net.set_behavior(c, std::make_unique<SilentBehavior>());
    }
  }
  net.start();
  net.run_round();
  EXPECT_EQ(net.stats().transmissions, 1u);
}

TEST(Lying, FlipsRelayedReports) {
  const Torus torus(12, 12);
  RadioNetwork net(torus, 1, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<SilentBehavior>());
  }
  const Coord liar{5, 5};
  net.set_behavior(liar, std::make_unique<LyingBehavior>(0));
  net.start();  // liar queues its wrong COMMITTED
  NodeContext ctx(net, liar);
  auto* b = net.behavior(liar);
  b->on_receive(ctx, {{5, 6}, make_committed({5, 6}, 1)});
  b->on_receive(ctx, {{5, 4}, make_heard({{5, 4}}, {5, 3}, 1)});
  net.run_round();  // delivers start-round broadcasts
  net.run_round();  // delivers the lies
  // Liar produced: 1 COMMITTED + 2 lying HEARDs.
  EXPECT_EQ(net.transmissions_of(liar), 3u);
}

TEST(Lying, DoesNotRepeatIdenticalLies) {
  const Torus torus(12, 12);
  RadioNetwork net(torus, 1, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<SilentBehavior>());
  }
  const Coord liar{5, 5};
  net.set_behavior(liar, std::make_unique<LyingBehavior>(0));
  net.start();
  NodeContext ctx(net, liar);
  auto* b = net.behavior(liar);
  b->on_receive(ctx, {{5, 6}, make_committed({5, 6}, 1)});
  b->on_receive(ctx, {{5, 6}, make_committed({5, 6}, 1)});
  net.run_round();
  net.run_round();
  EXPECT_EQ(net.transmissions_of(liar), 2u);  // COMMITTED + one HEARD
}

TEST(Lying, CapsRelayDepth) {
  const Torus torus(12, 12);
  RadioNetwork net(torus, 1, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<SilentBehavior>());
  }
  const Coord liar{5, 5};
  net.set_behavior(liar, std::make_unique<LyingBehavior>(0));
  net.start();
  NodeContext ctx(net, liar);
  auto* b = net.behavior(liar);
  // Depth-3 chain: the liar must not extend it further.
  b->on_receive(
      ctx, {{5, 6}, make_heard({{5, 8}, {5, 7}, {5, 6}}, {5, 9}, 1)});
  net.run_round();
  net.run_round();
  EXPECT_EQ(net.transmissions_of(liar), 1u);  // only the start COMMITTED
}

TEST(CrashAtRound, HonestUntilCrash) {
  const Torus torus(12, 12);
  RadioNetwork net(torus, 1, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<SilentBehavior>());
  }
  const Coord node{5, 5};
  net.set_behavior(node,
                   std::make_unique<CrashAtRoundBehavior>(
                       std::make_unique<CrashFloodBehavior>(ProtocolParams{}),
                       /*crash_round=*/2));
  net.start();
  NodeContext ctx(net, node);
  auto* b = net.behavior(node);
  // Round 0: alive — receives a value, relays it (delivery happens one round
  // after the send is queued).
  b->on_receive(ctx, {{5, 6}, make_committed({5, 6}, 1)});
  net.run_round();
  net.run_round();
  EXPECT_EQ(net.transmissions_of(node), 1u);
  // Round >= 2: crashed — receipt does nothing, and committed_value hides
  // the inner state (a faulty node is never scored).
  b->on_receive(ctx, {{5, 4}, make_committed({5, 4}, 0)});
  net.run_round();
  EXPECT_EQ(net.transmissions_of(node), 1u);
  EXPECT_FALSE(b->committed_value().has_value());
}

TEST(CrashAtRound, CrashAtZeroNeverActs) {
  const Torus torus(12, 12);
  RadioNetwork net(torus, 1, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<SilentBehavior>());
  }
  const Coord node{5, 5};
  net.set_behavior(node,
                   std::make_unique<CrashAtRoundBehavior>(
                       std::make_unique<CrashFloodBehavior>(ProtocolParams{}),
                       /*crash_round=*/0));
  net.start();
  NodeContext ctx(net, node);
  net.behavior(node)->on_receive(ctx, {{5, 6}, make_committed({5, 6}, 1)});
  net.run_round();
  net.run_round();
  EXPECT_EQ(net.transmissions_of(node), 0u);
}

}  // namespace
}  // namespace rbcast
