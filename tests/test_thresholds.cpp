// Integration tests pinning the paper's thresholds: success/failure must flip
// exactly where Theorems 1, 4, 5 (and the CPA/RPA separation of Sections III
// and IX) say, for small radii where exhaustive simulation is cheap.

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"

namespace rbcast {
namespace {

Aggregate run_barrier(std::int32_t r, std::int64_t t, ProtocolKind protocol,
                      PlacementKind placement_kind, bool trim,
                      AdversaryKind adversary = AdversaryKind::kSilent,
                      int reps = 1) {
  SimConfig cfg;
  cfg.width = 8 * r + 4;
  cfg.height = (2 * r + 1) * 4;  // multiple of the puncture period
  cfg.r = r;
  cfg.metric = Metric::kLInf;
  cfg.t = t;
  cfg.protocol = protocol;
  cfg.adversary = adversary;
  cfg.seed = 4242;
  PlacementConfig placement;
  placement.kind = placement_kind;
  placement.trim = trim;
  return run_repeated(cfg, placement, reps);
}

// ---------------------------------------------------------------------------
// Crash-stop: exact threshold at t = r(2r+1) (Theorems 4 and 5)
// ---------------------------------------------------------------------------

TEST(Thresholds, CrashStopFlipsExactlyAtR2rPlus1) {
  for (std::int32_t r = 1; r <= 2; ++r) {
    // t = r(2r+1): full strips are legal and partition the torus.
    const Aggregate at = run_barrier(r, crash_linf_impossible_min(r),
                                     ProtocolKind::kCrashFlood,
                                     PlacementKind::kFullStrip, false);
    EXPECT_FALSE(at.all_success()) << "r=" << r;
    EXPECT_LT(at.mean_coverage(), 1.0) << "r=" << r;

    // t = r(2r+1) - 1: the densest barrier we can build leaks.
    const Aggregate below = run_barrier(r, crash_linf_achievable_max(r),
                                        ProtocolKind::kCrashFlood,
                                        PlacementKind::kPuncturedStrip, true);
    EXPECT_TRUE(below.all_success()) << "r=" << r;
  }
}

TEST(Thresholds, CrashStopPartitionBlocksRegionBetweenStrips) {
  const std::int32_t r = 2;
  const Aggregate agg = run_barrier(r, crash_linf_impossible_min(r),
                                    ProtocolKind::kCrashFlood,
                                    PlacementKind::kFullStrip, false);
  // The enclosed region (between the strips, opposite the source) is roughly
  // (width/2 - r)/width of the torus; coverage should sit near the remainder.
  EXPECT_LT(agg.mean_coverage(), 0.75);
  EXPECT_GT(agg.mean_coverage(), 0.35);
}

// ---------------------------------------------------------------------------
// Byzantine: exact threshold at t < r(2r+1)/2 (Theorem 1 + [Koo04])
// ---------------------------------------------------------------------------

TEST(Thresholds, ByzantineTwoHopFlipsExactlyAtCeilHalf) {
  for (std::int32_t r = 1; r <= 2; ++r) {
    const Aggregate achievable = run_barrier(
        r, byz_linf_achievable_max(r), ProtocolKind::kBvTwoHop,
        PlacementKind::kCheckerboardStrip, true);
    EXPECT_TRUE(achievable.all_success()) << "r=" << r;

    const Aggregate impossible = run_barrier(
        r, byz_linf_impossible_min(r), ProtocolKind::kBvTwoHop,
        PlacementKind::kCheckerboardStrip, false);
    EXPECT_FALSE(impossible.all_success()) << "r=" << r;
    EXPECT_EQ(impossible.wrong_total, 0) << "r=" << r;
  }
}

TEST(Thresholds, ByzantineLyingBarrierSameFlip) {
  const std::int32_t r = 2;
  const Aggregate achievable = run_barrier(
      r, byz_linf_achievable_max(r), ProtocolKind::kBvTwoHop,
      PlacementKind::kCheckerboardStrip, true, AdversaryKind::kLying);
  EXPECT_TRUE(achievable.all_success());
  EXPECT_EQ(achievable.wrong_total, 0);

  const Aggregate impossible = run_barrier(
      r, byz_linf_impossible_min(r), ProtocolKind::kBvTwoHop,
      PlacementKind::kCheckerboardStrip, false, AdversaryKind::kLying);
  EXPECT_FALSE(impossible.all_success());
  EXPECT_EQ(impossible.wrong_total, 0);
}

TEST(Thresholds, ByzantineFourHopMatchesTwoHopAtSmallR) {
  const std::int32_t r = 1;
  const Aggregate achievable = run_barrier(
      r, byz_linf_achievable_max(r), ProtocolKind::kBvIndirectFlood,
      PlacementKind::kCheckerboardStrip, true);
  EXPECT_TRUE(achievable.all_success());

  const Aggregate impossible = run_barrier(
      r, byz_linf_impossible_min(r), ProtocolKind::kBvIndirectFlood,
      PlacementKind::kCheckerboardStrip, false);
  EXPECT_FALSE(impossible.all_success());
}

// ---------------------------------------------------------------------------
// CPA vs the indirect-report protocol (Sections III and IX). The paper
// *guarantees* CPA only up to t <= 2r^2/3 while guaranteeing the BV protocol
// up to the exact threshold — a strict gap in proven bounds for every r >= 2.
// On the grid itself CPA empirically survives past its proven bound (the
// separation examples of [Pelc-Peleg05] are non-grid graphs, and the paper's
// footnote 1 anticipates that simpler protocols reach the same threshold),
// so beyond the bound we assert only safety, never failure.
// ---------------------------------------------------------------------------

TEST(Thresholds, GuaranteeGapBvBeyondCpaBound) {
  const std::int32_t r = 2;
  const std::int64_t t = byz_linf_achievable_max(r);  // 4 > 2r^2/3 = 2
  ASSERT_GT(t, cpa_linf_achievable_max(r));

  // The BV protocol is guaranteed (and measured) to succeed at t.
  const Aggregate bv =
      run_barrier(r, t, ProtocolKind::kBvTwoHop,
                  PlacementKind::kCheckerboardStrip, true);
  EXPECT_TRUE(bv.all_success());

  // CPA above its proven bound: outside its guarantee; must stay safe.
  const Aggregate cpa =
      run_barrier(r, t, ProtocolKind::kCpa,
                  PlacementKind::kCheckerboardStrip, true);
  EXPECT_EQ(cpa.wrong_total, 0);
}

TEST(Thresholds, CpaStillFineAtItsOwnBound) {
  const std::int32_t r = 2;
  const Aggregate cpa = run_barrier(r, cpa_linf_achievable_max(r),
                                    ProtocolKind::kCpa,
                                    PlacementKind::kCheckerboardStrip, true);
  EXPECT_TRUE(cpa.all_success());
}

// ---------------------------------------------------------------------------
// Safety never depends on t: even at absurd budgets nothing wrong is
// committed (Theorem 2 and the trivially-safe commit rules).
// ---------------------------------------------------------------------------

TEST(Thresholds, NoWrongCommitsEvenWayAboveThreshold) {
  for (const ProtocolKind kind :
       {ProtocolKind::kCpa, ProtocolKind::kBvTwoHop}) {
    const Aggregate agg =
        run_barrier(2, 20, kind, PlacementKind::kCheckerboardStrip, false,
                    AdversaryKind::kLying);
    EXPECT_EQ(agg.wrong_total, 0) << to_string(kind);
  }
}

}  // namespace
}  // namespace rbcast
