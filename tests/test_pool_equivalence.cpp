// Structure-of-arrays / per-node-behavior equivalence: the SoA pools
// (protocols/pool.h) must reproduce the behavior-backed engine's results
// EXACTLY — same outcomes, same commit rounds, same traffic, same
// deterministic counters — across protocols, adversaries, channel models,
// and the geometry corners where the two-hop pool falls back to behaviors.
// The golden SHA-256 suite pins the serialized bytes; this suite pins the
// full SimResult object (and the fallback decisions) field by field.

#include <gtest/gtest.h>

#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/fault_set.h"
#include "radiobcast/grid/torus.h"
#include "radiobcast/protocols/pool.h"

namespace rbcast {
namespace {

/// Runs the same (config, faults) under both engines and returns the pair.
struct BothResults {
  SimResult pooled;
  SimResult behaviors;
};

BothResults run_both(const SimConfig& cfg, const FaultSet& faults) {
  BothResults out;
  set_soa_pools_enabled(true);
  out.pooled = run_simulation(cfg, faults);
  set_soa_pools_enabled(false);
  out.behaviors = run_simulation(cfg, faults);
  set_soa_pools_enabled(true);  // restore the process default
  return out;
}

void expect_identical(const BothResults& r, const std::string& tag) {
  const SimResult& a = r.pooled;
  const SimResult& b = r.behaviors;
  EXPECT_EQ(a.honest_nodes, b.honest_nodes) << tag;
  EXPECT_EQ(a.correct_commits, b.correct_commits) << tag;
  EXPECT_EQ(a.wrong_commits, b.wrong_commits) << tag;
  EXPECT_EQ(a.undecided, b.undecided) << tag;
  EXPECT_EQ(a.rounds, b.rounds) << tag;
  EXPECT_EQ(a.reached_quiescence, b.reached_quiescence) << tag;
  EXPECT_EQ(a.transmissions, b.transmissions) << tag;
  EXPECT_EQ(a.deliveries, b.deliveries) << tag;
  EXPECT_EQ(a.payload_units, b.payload_units) << tag;
  EXPECT_EQ(a.outcomes, b.outcomes) << tag;
  EXPECT_EQ(a.commit_rounds, b.commit_rounds) << tag;
  // Counters must agree except engine_bytes_peak, which measures the state
  // layout itself and is exactly what the two engines do differently.
  Counters ca = a.counters;
  Counters cb = b.counters;
  EXPECT_GT(ca.engine_bytes_peak, 0u) << tag;
  EXPECT_GT(cb.engine_bytes_peak, 0u) << tag;
  ca.engine_bytes_peak = 0;
  cb.engine_bytes_peak = 0;
  EXPECT_EQ(ca, cb) << tag;
}

SimConfig base_config(ProtocolKind protocol, AdversaryKind adversary) {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.t = protocol == ProtocolKind::kCrashFlood ? 2 : 1;
  cfg.protocol = protocol;
  cfg.adversary = adversary;
  cfg.seed = 42;
  return cfg;
}

FaultSet two_faults(const Torus& torus) {
  return FaultSet(torus, {{3, 4}, {7, 8}});
}

TEST(PoolEquivalence, CrashFloodMatrix) {
  for (const AdversaryKind adversary :
       {AdversaryKind::kSilent, AdversaryKind::kCrashAtRound}) {
    SimConfig cfg = base_config(ProtocolKind::kCrashFlood, adversary);
    Torus torus(cfg.width, cfg.height);
    expect_identical(run_both(cfg, two_faults(torus)),
                     std::string("crash-flood/") + to_string(adversary));
  }
}

TEST(PoolEquivalence, CpaMatrix) {
  for (const AdversaryKind adversary :
       {AdversaryKind::kSilent, AdversaryKind::kLying}) {
    SimConfig cfg = base_config(ProtocolKind::kCpa, adversary);
    Torus torus(cfg.width, cfg.height);
    expect_identical(run_both(cfg, two_faults(torus)),
                     std::string("cpa/") + to_string(adversary));
  }
}

TEST(PoolEquivalence, BvTwoHopMatrix) {
  for (const AdversaryKind adversary :
       {AdversaryKind::kSilent, AdversaryKind::kLying,
        AdversaryKind::kSpoofing}) {
    SimConfig cfg = base_config(ProtocolKind::kBvTwoHop, adversary);
    Torus torus(cfg.width, cfg.height);
    expect_identical(run_both(cfg, two_faults(torus)),
                     std::string("bv-2hop/") + to_string(adversary));
  }
}

TEST(PoolEquivalence, BvTwoHopRadiusTwoTrackAfterCommit) {
  SimConfig cfg = base_config(ProtocolKind::kBvTwoHop, AdversaryKind::kLying);
  cfg.r = 2;
  cfg.t = 4;
  Torus torus(cfg.width, cfg.height);
  expect_identical(run_both(cfg, two_faults(torus)), "bv-2hop/r2");
}

TEST(PoolEquivalence, LossyChannelWithRetransmissions) {
  // The lossy slow path consumes channel randomness per delivery; identical
  // results prove the pool receives callbacks in exactly the same order.
  for (const ProtocolKind protocol :
       {ProtocolKind::kCrashFlood, ProtocolKind::kCpa,
        ProtocolKind::kBvTwoHop}) {
    SimConfig cfg = base_config(protocol, AdversaryKind::kSilent);
    cfg.loss_p = 0.25;
    cfg.retransmissions = 2;
    Torus torus(cfg.width, cfg.height);
    expect_identical(run_both(cfg, two_faults(torus)),
                     std::string(to_string(protocol)) + "/lossy");
  }
}

TEST(PoolEquivalence, PairwiseLossModel) {
  SimConfig cfg = base_config(ProtocolKind::kBvTwoHop, AdversaryKind::kSilent);
  cfg.loss_p = 0.2;
  cfg.loss_model = LossModel::kPairwise;
  Torus torus(cfg.width, cfg.height);
  expect_identical(run_both(cfg, two_faults(torus)), "bv-2hop/pairwise");
}

TEST(PoolEquivalence, UncoveredProtocolIsUnaffectedByToggle) {
  // bv-4hop has no pool: both runs take the behavior path, and the toggle
  // must not perturb anything (including the engine_bytes_peak accounting,
  // which is identical when no pool is installed).
  SimConfig cfg = base_config(ProtocolKind::kBvIndirectFlood,
                              AdversaryKind::kLying);
  Torus torus(cfg.width, cfg.height);
  const BothResults r = run_both(cfg, two_faults(torus));
  expect_identical(r, "bv-4hop-flood/lying");
  EXPECT_EQ(r.pooled.counters.engine_bytes_peak,
            r.behaviors.counters.engine_bytes_peak);
}

TEST(PoolEquivalence, PoolsAreInstalledWhenSupported) {
  // Guard against the equivalence suite silently comparing behaviors with
  // behaviors: the supported() predicate must hold for the matrix geometry.
  Torus torus(12, 12);
  EXPECT_TRUE(BvTwoHopPool::supported(torus, 1, Metric::kLInf));
  EXPECT_TRUE(BvTwoHopPool::supported(torus, 2, Metric::kLInf));
  // And must reject the corners the pool cannot represent.
  Torus huge(2048, 2048);  // 2^22 nodes: packed 21-bit indices overflow
  EXPECT_FALSE(BvTwoHopPool::supported(huge, 2, Metric::kLInf));
}

TEST(PoolEquivalence, JammingAdversary) {
  SimConfig cfg = base_config(ProtocolKind::kCrashFlood,
                              AdversaryKind::kJamming);
  cfg.jam_budget = 4;
  Torus torus(cfg.width, cfg.height);
  expect_identical(run_both(cfg, two_faults(torus)), "crash-flood/jamming");
}

}  // namespace
}  // namespace rbcast
