#include "radiobcast/net/tdma.h"

#include <gtest/gtest.h>

#include <set>

namespace rbcast {
namespace {

TEST(Tdma, SlotCountIsTwoRPlusOneSquared) {
  EXPECT_EQ(tdma_slot_count(1), 9);
  EXPECT_EQ(tdma_slot_count(2), 25);
  EXPECT_EQ(tdma_slot_count(3), 49);
}

TEST(Tdma, SlotsInRange) {
  for (std::int32_t r = 1; r <= 3; ++r) {
    for (std::int32_t x = -5; x <= 5; ++x) {
      for (std::int32_t y = -5; y <= 5; ++y) {
        const auto slot = tdma_slot({x, y}, r);
        EXPECT_GE(slot, 0);
        EXPECT_LT(slot, tdma_slot_count(r));
      }
    }
  }
}

TEST(Tdma, PeriodicInBothAxes) {
  const std::int32_t r = 2;
  const std::int32_t period = 2 * r + 1;
  EXPECT_EQ(tdma_slot({3, 4}, r), tdma_slot({3 + period, 4}, r));
  EXPECT_EQ(tdma_slot({3, 4}, r), tdma_slot({3, 4 + period}, r));
  EXPECT_EQ(tdma_slot({-2, -9}, r), tdma_slot({-2 + 3 * period, -9 + period}, r));
}

TEST(Tdma, NegativeCoordinatesHandled) {
  EXPECT_EQ(tdma_slot({-1, -1}, 1), tdma_slot({2, 2}, 1));
}

TEST(Tdma, AllSlotsUsedInOnePeriodBlock) {
  const std::int32_t r = 2;
  std::set<std::int32_t> slots;
  for (std::int32_t x = 0; x < 2 * r + 1; ++x) {
    for (std::int32_t y = 0; y < 2 * r + 1; ++y) {
      slots.insert(tdma_slot({x, y}, r));
    }
  }
  EXPECT_EQ(static_cast<std::int32_t>(slots.size()), tdma_slot_count(r));
}

TEST(Tdma, CompatibleDimensions) {
  EXPECT_TRUE(tdma_compatible(Torus(15, 30), 2));   // multiples of 5
  EXPECT_FALSE(tdma_compatible(Torus(16, 30), 2));
  EXPECT_TRUE(tdma_compatible(Torus(9, 9), 1));
  EXPECT_FALSE(tdma_compatible(Torus(10, 9), 1));
}

TEST(Tdma, ValidOnCompatibleTorus) {
  // The Section II claim, proven exhaustively: the canonical schedule has no
  // conflicting pair on a compatible torus, in either metric.
  for (std::int32_t r = 1; r <= 2; ++r) {
    const std::int32_t period = 2 * r + 1;
    const Torus torus(4 * period, 4 * period);
    ASSERT_TRUE(tdma_compatible(torus, r));
    EXPECT_FALSE(find_tdma_violation(torus, r, Metric::kLInf).has_value())
        << "r=" << r;
    EXPECT_FALSE(find_tdma_violation(torus, r, Metric::kL2).has_value())
        << "r=" << r;
  }
}

TEST(Tdma, SeamViolationOnIncompatibleTorus) {
  // Width not a multiple of 2r+1: the schedule breaks across the seam.
  const Torus torus(10, 9);  // r=1 -> period 3; 10 % 3 != 0
  const auto violation = find_tdma_violation(torus, 1, Metric::kLInf);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(tdma_slot(violation->a, 1), tdma_slot(violation->b, 1));
}

}  // namespace
}  // namespace rbcast
