// Fidelity test for Fig 1 / Fig 2: in a fault-free run of the Section VI
// protocol, the worst-case decider P at the pnbd corner (a-r, b+r+1) really
// does reliably determine the committed values of ALL r(2r+1) nodes of
// region M in nbd(a,b) — the direct-hearing part R (Fig 2) and the indirect
// parts U, S1, S2 via the constructive path families.

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"
#include "radiobcast/net/network.h"
#include "radiobcast/paths/construction.h"
#include "radiobcast/protocols/bv_indirect.h"
#include "radiobcast/protocols/bv_two_hop.h"
#include "radiobcast/protocols/common.h"
#include "radiobcast/protocols/source.h"

namespace rbcast {
namespace {

/// Runs a fault-free broadcast with the given protocol on a torus big enough
/// for the (a,b)=(center) frame, returning the network for inspection.
template <typename Behavior>
RadioNetwork run_fault_free(std::int32_t r, std::int64_t t,
                            RelayMode* mode /* nullptr = two-hop */) {
  const std::int32_t side = 8 * r + 4;
  Torus torus(side, side);
  RadioNetwork net(torus, r, Metric::kLInf, /*seed=*/1);
  const Coord source{0, 0};
  ProtocolParams params{t, source};
  params.track_after_commit = true;  // observe the full determination set
  for (const Coord c : torus.all_coords()) {
    if (c == source) {
      net.set_behavior(c, std::make_unique<SourceBehavior>(1));
    } else if constexpr (std::is_same_v<Behavior, BvIndirectBehavior>) {
      net.set_behavior(c, std::make_unique<BvIndirectBehavior>(
                              params, torus, r, Metric::kLInf, *mode));
    } else {
      net.set_behavior(c, std::make_unique<BvTwoHopBehavior>(params, torus, r,
                                                             Metric::kLInf));
    }
  }
  net.start();
  net.run_until_quiescent(10 * side);
  return net;
}

TEST(Fig1RegionM, CornerDeciderDeterminesAllOfM4Hop) {
  const std::int32_t r = 2;
  const std::int64_t t = byz_linf_achievable_max(r);
  RelayMode mode = RelayMode::kEarmarked;
  auto net = run_fault_free<BvIndirectBehavior>(r, t, &mode);
  const Torus& torus = net.torus();

  // Frame: neighborhood center (a,b), decider P at the pnbd corner.
  const Coord ab{10, 10};
  const Coord p = torus.wrap(Coord{ab.x - r, ab.y + r + 1});
  const auto* decider = dynamic_cast<const BvIndirectBehavior*>(net.behavior(p));
  ASSERT_NE(decider, nullptr);
  EXPECT_TRUE(decider->committed_value().has_value());

  // Every node of region M (translated to the ab frame) is determined.
  std::int64_t determined = 0;
  for (const Coord m_rel : region_M(r)) {
    const Coord m = torus.wrap(ab + (m_rel - Coord{0, 0}));
    if (decider->has_determined(m, 1)) ++determined;
    EXPECT_TRUE(decider->has_determined(m, 1))
        << "M node " << to_string(m_rel) << " undetermined";
  }
  EXPECT_EQ(determined, r_2r_plus_1(r));
  // That is at least the 2t+1 the completeness proof requires.
  EXPECT_GE(determined, 2 * t + 1);
}

TEST(Fig1RegionM, CornerDeciderDeterminesAllOfMTwoHop) {
  // The two-hop variant reaches the same determinations for the direct and
  // single-intermediate parts; the full M needs only one intermediate in the
  // S1/J and U/A families... the two-hop protocol still determines all of M
  // because every node of M has t+1 disjoint one-intermediate chains to P
  // within a single neighborhood on the fault-free grid.
  const std::int32_t r = 2;
  const std::int64_t t = byz_linf_achievable_max(r);
  auto net = run_fault_free<BvTwoHopBehavior>(r, t, nullptr);
  const Torus& torus = net.torus();
  const Coord ab{10, 10};
  const Coord p = torus.wrap(Coord{ab.x - r, ab.y + r + 1});
  const auto* decider = dynamic_cast<const BvTwoHopBehavior*>(net.behavior(p));
  ASSERT_NE(decider, nullptr);
  EXPECT_TRUE(decider->committed_value().has_value());

  // Direct region R (Fig 2) is certainly determined.
  for (const Coord rel : region_R(r).cells()) {
    const Coord node = torus.wrap(ab + (rel - Coord{0, 0}));
    EXPECT_TRUE(decider->has_determined(node, 1))
        << "R node " << to_string(rel) << " undetermined";
  }
}

TEST(Fig1RegionM, DirectRegionMatchesFig2) {
  // Geometry cross-check: region R is exactly the set of M nodes within r of
  // P (what P hears directly).
  for (std::int32_t r = 1; r <= 5; ++r) {
    const Coord p = corner_P(r);
    const Rect rr = region_R(r);
    for (const Coord m : region_M(r)) {
      const bool direct = linf_norm(m - p) <= r;
      EXPECT_EQ(direct, rr.contains(m)) << "r=" << r << " " << to_string(m);
    }
  }
}

}  // namespace
}  // namespace rbcast
