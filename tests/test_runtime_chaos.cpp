// Chaos-layer tests: lossy/jammed sim-runtime equivalence, ChaosTransport
// fault injection semantics, node crash/restart recovery, and snapshot
// persistence.
//
// The equivalence argument (docs/RUNTIME.md): message-level loss is applied
// sender-side ABOVE the perfect link, drawn from the simulator's
// PairwiseLossChannel streams (per-(sender, receiver), seeded by
// pairwise_loss_seed), with per-receiver ROUND_DONE counts. The link then
// guarantees every non-suppressed message arrives, so both backends deliver
// the exact same message sets in the exact same order — verdicts, commit
// rounds, and envelope drop counts match node-for-node. Datagram-level chaos
// (ChaosTransport) sits BELOW the link and is fully masked by
// retransmission: it perturbs timing and packet counters, never verdicts.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "radiobcast/core/simulation.h"
#include "radiobcast/runtime/harness.h"
#include "radiobcast/runtime/snapshot.h"
#include "radiobcast/runtime/transport.h"

namespace rbcast {
namespace {

// ---------------------------------------------------------------------------
// Equivalence: lossy and jammed channels, sim vs. threads-over-UDP.

Scenario torus_scenario(std::int32_t side, std::uint64_t seed) {
  Scenario scenario;
  scenario.sim.width = side;
  scenario.sim.height = side;
  scenario.sim.r = 1;
  scenario.sim.metric = Metric::kLInf;
  scenario.sim.t = 0;
  scenario.sim.protocol = ProtocolKind::kCrashFlood;
  scenario.sim.adversary = AdversaryKind::kSilent;
  scenario.sim.value = 1;
  scenario.sim.source = {0, 0};
  scenario.sim.seed = seed;
  scenario.sim.max_rounds = 0;  // both backends use default_round_bound
  // Equivalence runs barrier forever: all peers are alive on loopback, and a
  // timeout would make delivery timing-dependent.
  scenario.round_timeout_ms = 0;
  scenario.linger_timeout_ms = 2000;
  return scenario;
}

void expect_runtime_matches_sim(const Scenario& scenario, const SimResult& sim,
                                const RuntimeResult& rt) {
  EXPECT_EQ(rt.honest_nodes, sim.honest_nodes);
  EXPECT_EQ(rt.correct_commits, sim.correct_commits);
  EXPECT_EQ(rt.wrong_commits, sim.wrong_commits);
  EXPECT_EQ(rt.undecided, sim.undecided);
  EXPECT_FALSE(rt.any_interrupted);

  const Torus torus(scenario.sim.width, scenario.sim.height);
  ASSERT_EQ(rt.verdicts.size(), static_cast<std::size_t>(torus.node_count()));
  for (const RuntimeVerdict& v : rt.verdicts) {
    const std::size_t i = static_cast<std::size_t>(v.index);
    const std::string where = "node " + std::to_string(v.index) + " (" +
                              std::to_string(v.self.x) + "," +
                              std::to_string(v.self.y) + ")";
    switch (sim.outcomes[i]) {
      case NodeOutcome::kSource:
        EXPECT_EQ(v.role, NodeRole::kSource) << where;
        break;
      case NodeOutcome::kFaulty:
        EXPECT_EQ(v.role, NodeRole::kFaulty) << where;
        break;
      case NodeOutcome::kUndecided:
        EXPECT_EQ(v.role, NodeRole::kHonest) << where;
        EXPECT_FALSE(v.committed.has_value()) << where;
        break;
      case NodeOutcome::kCommitted0:
      case NodeOutcome::kCommitted1: {
        const std::uint8_t value =
            sim.outcomes[i] == NodeOutcome::kCommitted1 ? 1 : 0;
        EXPECT_EQ(v.role, NodeRole::kHonest) << where;
        ASSERT_TRUE(v.committed.has_value()) << where;
        EXPECT_EQ(*v.committed, value) << where;
        EXPECT_EQ(v.commit_round, sim.commit_rounds[i]) << where;
        break;
      }
    }
  }

  EXPECT_EQ(rt.counters.commits, sim.counters.commits);
  EXPECT_EQ(rt.counters.broadcasts_queued, sim.counters.broadcasts_queued);
  EXPECT_EQ(rt.counters.last_commit_round, sim.counters.last_commit_round);
  // The channel suppressed the exact same (message, receiver) envelopes on
  // both backends — the heart of the lossy-equivalence claim.
  EXPECT_EQ(rt.counters.envelopes_dropped, sim.counters.envelopes_dropped);
}

// The ISSUE acceptance case: a seeded 10%-loss 8x8-torus deployment over
// real sockets reproduces the simulator's verdicts node-for-node when the
// simulator draws from the distributedly-replicable pairwise loss channel.
TEST(RuntimeChaosEquivalence, LossyDeploymentMatchesPairwiseSimNodeForNode) {
  Scenario scenario = torus_scenario(8, 20260808);
  scenario.sim.t = 3;
  scenario.faults = {{3, 3}, {6, 2}};
  scenario.sim.loss_p = 0.1;
  scenario.sim.loss_model = LossModel::kPairwise;

  const SimResult sim = run_simulation(scenario.sim, scenario.fault_set());
  const RuntimeResult rt = run_scenario_threads(scenario);

  // Loss must have actually fired, or this test proves nothing.
  ASSERT_GT(sim.counters.envelopes_dropped, 0u);
  expect_runtime_matches_sim(scenario, sim, rt);
}

TEST(RuntimeChaosEquivalence, UnboundedJammingMatchesGeometricBlackout) {
  Scenario scenario = torus_scenario(8, 777);
  scenario.sim.t = 1;
  scenario.sim.adversary = AdversaryKind::kJamming;
  scenario.sim.jam_budget = -1;  // unbounded: a static geometric blackout
  scenario.faults = {{4, 4}};

  const SimResult sim = run_simulation(scenario.sim, scenario.fault_set());
  const RuntimeResult rt = run_scenario_threads(scenario);

  // The blackout must have destroyed traffic and stranded somebody.
  ASSERT_GT(sim.counters.envelopes_dropped, 0u);
  ASSERT_GT(sim.undecided, 0);
  expect_runtime_matches_sim(scenario, sim, rt);
}

// The shared-stream and pairwise loss channels are different random
// processes over the same marginal distribution: per-seed results differ,
// but the coverage they induce must agree on average. This bounds how much
// the runtime's channel (pairwise by construction) can drift from the
// historical shared-stream ablation numbers.
TEST(RuntimeChaosEquivalence, PairwiseAndSharedStreamLossAgreeOnAverage) {
  double mean[2] = {0.0, 0.0};
  const int kSeeds = 20;
  for (int which = 0; which < 2; ++which) {
    for (int s = 0; s < kSeeds; ++s) {
      Scenario scenario = torus_scenario(8, 9000 + static_cast<std::uint64_t>(s));
      scenario.sim.loss_p = 0.25;
      scenario.sim.loss_model =
          which == 0 ? LossModel::kSharedStream : LossModel::kPairwise;
      const SimResult sim =
          run_simulation(scenario.sim, scenario.fault_set());
      mean[which] += static_cast<double>(sim.correct_commits) /
                     static_cast<double>(sim.honest_nodes);
    }
    mean[which] /= kSeeds;
  }
  EXPECT_NEAR(mean[0], mean[1], 0.15)
      << "shared-stream coverage " << mean[0] << " vs pairwise " << mean[1];
}

// ---------------------------------------------------------------------------
// ChaosTransport unit semantics (over a recording stub, no sockets).

class RecordingTransport final : public Transport {
 public:
  void send(std::uint32_t to, const std::vector<std::uint8_t>& bytes) override {
    sent.emplace_back(to, bytes);
  }
  bool try_receive(Datagram& out) override {
    if (inbox.empty()) return false;
    out = std::move(inbox.front());
    inbox.pop_front();
    return true;
  }

  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> sent;
  std::deque<Datagram> inbox;
};

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag, 0xAB}; }

TEST(ChaosTransport, SameSeedInjectsTheSameFaultSchedule) {
  std::vector<std::vector<std::uint8_t>> first;
  for (int run = 0; run < 2; ++run) {
    RecordingTransport inner;
    ChaosOptions opts;
    opts.drop_p = 0.3;
    opts.duplicate_p = 0.2;
    opts.seed = 42;
    ChaosTransport chaos(0, inner, opts);
    for (int i = 0; i < 100; ++i) {
      chaos.send(1, payload(static_cast<std::uint8_t>(i)));
    }
    std::vector<std::vector<std::uint8_t>> delivered;
    for (const auto& [to, bytes] : inner.sent) delivered.push_back(bytes);
    ASSERT_LT(delivered.size(), 130u);  // drops happened
    ASSERT_GT(delivered.size(), 70u);   // but most survive (and dups add)
    if (run == 0) {
      first = delivered;
      EXPECT_GT(chaos.stats().drops, 0u);
      EXPECT_GT(chaos.stats().duplicates, 0u);
    } else {
      EXPECT_EQ(delivered, first) << "fate schedule not seed-deterministic";
    }
  }

  // A different seed picks a different schedule.
  RecordingTransport inner;
  ChaosOptions opts;
  opts.drop_p = 0.3;
  opts.duplicate_p = 0.2;
  opts.seed = 43;
  ChaosTransport chaos(0, inner, opts);
  for (int i = 0; i < 100; ++i) {
    chaos.send(1, payload(static_cast<std::uint8_t>(i)));
  }
  std::vector<std::vector<std::uint8_t>> delivered;
  for (const auto& [to, bytes] : inner.sent) delivered.push_back(bytes);
  EXPECT_NE(delivered, first);
}

TEST(ChaosTransport, FateStreamsArePerDestination) {
  // Interleaving traffic to other peers must not shift a pair's schedule:
  // the fate of datagram k on (self -> to) depends only on (seed, pair, k).
  auto run = [](bool interleave) {
    RecordingTransport inner;
    ChaosOptions opts;
    opts.drop_p = 0.5;
    opts.seed = 7;
    ChaosTransport chaos(0, inner, opts);
    for (int i = 0; i < 40; ++i) {
      chaos.send(1, payload(static_cast<std::uint8_t>(i)));
      if (interleave) chaos.send(2, payload(0xEE));
    }
    std::vector<std::vector<std::uint8_t>> to_peer1;
    for (const auto& [to, bytes] : inner.sent) {
      if (to == 1) to_peer1.push_back(bytes);
    }
    return to_peer1;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ChaosTransport, DuplicatesArriveBackToBack) {
  RecordingTransport inner;
  ChaosOptions opts;
  opts.duplicate_p = 1.0;
  opts.seed = 1;
  ChaosTransport chaos(0, inner, opts);
  chaos.send(3, payload(0x11));
  ASSERT_EQ(inner.sent.size(), 2u);
  EXPECT_EQ(inner.sent[0], inner.sent[1]);
  EXPECT_EQ(inner.sent[0].first, 3u);
  EXPECT_EQ(chaos.stats().duplicates, 1u);
}

TEST(ChaosTransport, PartitionIsDirected) {
  ChaosOptions opts;
  opts.seed = 1;
  opts.partitions.push_back({/*from=*/0, /*to=*/1, 0, -1});

  // The 0 -> 1 direction is black-holed...
  RecordingTransport inner0;
  ChaosTransport chaos0(0, inner0, opts);
  chaos0.send(1, payload(0x01));
  chaos0.send(2, payload(0x02));  // other destinations unaffected
  ASSERT_EQ(inner0.sent.size(), 1u);
  EXPECT_EQ(inner0.sent[0].first, 2u);
  EXPECT_EQ(chaos0.stats().partition_drops, 1u);

  // ...while the reverse direction sails through (same options, self = 1:
  // the partition entry is filtered to from == self).
  RecordingTransport inner1;
  ChaosTransport chaos1(1, inner1, opts);
  chaos1.send(0, payload(0x03));
  EXPECT_EQ(inner1.sent.size(), 1u);
  EXPECT_EQ(chaos1.stats().partition_drops, 0u);
}

TEST(ChaosTransport, DelayHoldsDatagramsUntilTheDeadline) {
  // Fake clock via the ChaosOptions::clock seam: the test advances time
  // explicitly instead of sleeping, so a loaded machine can't flake it.
  auto fake_now = std::chrono::steady_clock::now();
  RecordingTransport inner;
  ChaosOptions opts;
  opts.delay_p = 1.0;
  opts.delay = std::chrono::milliseconds(25);
  opts.seed = 1;
  opts.clock = [&fake_now] { return fake_now; };
  ChaosTransport chaos(0, inner, opts);
  chaos.send(1, payload(0x5A));
  EXPECT_TRUE(inner.sent.empty());
  EXPECT_EQ(chaos.stats().delays, 1u);

  // Pumping before the deadline releases nothing — even a hair before.
  Datagram d;
  EXPECT_FALSE(chaos.try_receive(d));
  EXPECT_TRUE(inner.sent.empty());
  fake_now += std::chrono::milliseconds(25) - std::chrono::microseconds(1);
  EXPECT_FALSE(chaos.try_receive(d));
  EXPECT_TRUE(inner.sent.empty());

  fake_now += std::chrono::microseconds(1);
  EXPECT_FALSE(chaos.try_receive(d));  // pump: releases the held datagram
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(inner.sent[0].first, 1u);
  EXPECT_EQ(inner.sent[0].second, payload(0x5A));
}

// ---------------------------------------------------------------------------
// Datagram chaos under the full runtime: masked by the perfect link.

TEST(RuntimeChaos, DatagramChaosIsMaskedByThePerfectLink) {
  Scenario scenario = torus_scenario(4, 321);
  scenario.chaos.drop_p = 0.1;
  scenario.chaos.duplicate_p = 0.05;

  const RuntimeResult result = run_scenario_threads(scenario);

  // Chaos fired at the socket layer...
  EXPECT_GT(result.counters.chaos_drops, 0u);
  // ...and the protocol outcome is untouched: retransmission masks drops,
  // dedup masks duplicates. This is exactly why verdict-level loss must be
  // injected above the link instead.
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.correct_commits, result.honest_nodes);
  EXPECT_EQ(result.counters.node_restarts, 0u);
}

// ---------------------------------------------------------------------------
// Crash / restart recovery (thread harness).

Scenario crash_scenario(const std::filesystem::path& state_dir) {
  Scenario scenario = torus_scenario(6, 4242);
  scenario.sim.max_rounds = 12;
  scenario.round_timeout_ms = 25;  // peers must outrun the dead node
  scenario.linger_timeout_ms = 500;
  scenario.suspect_after = 2;
  scenario.crash_node = Coord{3, 3};  // honest, max LInf distance from source
  scenario.crash_at_round = 1;        // dies before the commit wave arrives
  scenario.state_dir = state_dir.string();
  return scenario;
}

TEST(RuntimeChaos, CrashedNodeYieldsADegradedButCorrectVerdict) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "chaos_crash_dead";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Scenario scenario = crash_scenario(dir);
  scenario.restart_after_ms = -1;  // stays dead

  const RuntimeResult result = run_scenario_threads(scenario);

  // The crashed node is excused, everyone else commits: degraded-but-correct
  // rather than a hang or a missing verdict.
  EXPECT_EQ(result.crashed_nodes, 1);
  EXPECT_EQ(result.crashed_undecided, 1);
  EXPECT_EQ(result.honest_nodes, 35);
  EXPECT_EQ(result.correct_commits, 34);
  EXPECT_EQ(result.wrong_commits, 0);
  EXPECT_EQ(result.undecided, 1);
  EXPECT_FALSE(result.success());
  EXPECT_TRUE(result.degraded());
  EXPECT_TRUE(result.degraded_correct());
  EXPECT_GT(result.counters.barrier_timeouts, 0u);
  EXPECT_EQ(result.counters.node_restarts, 0u);

  const Torus torus(6, 6);
  const RuntimeVerdict& v =
      result.verdicts[static_cast<std::size_t>(torus.index({3, 3}))];
  EXPECT_TRUE(v.crashed);
  EXPECT_FALSE(v.committed.has_value());
  // The crash left a snapshot behind — the artifact a restart would resume
  // from, and what the orchestrator reads to synthesize dead-node verdicts.
  EXPECT_TRUE(std::filesystem::exists(
      dir / ("state-" + std::to_string(torus.index({3, 3})) + ".txt")));

  std::filesystem::remove_all(dir);
}

TEST(RuntimeChaos, RestartedNodeResumesFromSnapshotAndCommits) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "chaos_crash_restart";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Scenario scenario = crash_scenario(dir);
  scenario.restart_after_ms = 40;

  const RuntimeResult result = run_scenario_threads(scenario);

  // The restarted process rejoined the barrier (fresh synchronizer, snapshot
  // sequence numbers) and caught the commit wave from its peers' stubborn
  // retransmissions: full convergence, flagged as degraded.
  EXPECT_EQ(result.counters.node_restarts, 1u);
  EXPECT_EQ(result.wrong_commits, 0);
  EXPECT_EQ(result.correct_commits, result.honest_nodes);
  EXPECT_TRUE(result.success());
  EXPECT_TRUE(result.degraded());
  EXPECT_TRUE(result.degraded_correct());
  EXPECT_EQ(result.crashed_nodes, 0);  // its final incarnation finished clean

  const Torus torus(6, 6);
  const RuntimeVerdict& v =
      result.verdicts[static_cast<std::size_t>(torus.index({3, 3}))];
  EXPECT_FALSE(v.crashed);
  ASSERT_TRUE(v.committed.has_value());
  EXPECT_EQ(*v.committed, 1);
  EXPECT_EQ(v.counters.node_restarts, 1u);

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Snapshot persistence.

TEST(Snapshot, RoundtripsThroughDisk) {
  NodeSnapshot snap;
  snap.round = 7;
  snap.committed = 1;
  snap.commit_round = 4;
  snap.restarts = 2;
  snap.link.out_next_seq = {{1, 12}, {3, 9}};
  snap.link.in_next_seq = {{1, 11}, {3, 10}};
  snap.loss_draws = {{1, 36}, {3, 24}};

  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "snap_roundtrip.txt")
          .string();
  write_snapshot(path, snap);
  const auto loaded = load_snapshot(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, snap);

  // Overwrite is atomic-replace, not append: a second write fully replaces.
  snap.round = 8;
  snap.restarts = 3;
  write_snapshot(path, snap);
  const auto reloaded = load_snapshot(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(*reloaded, snap);
  std::filesystem::remove(path);
}

TEST(Snapshot, MissingFileMeansFreshStart) {
  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "snap_never_written.txt")
          .string();
  std::filesystem::remove(path);
  EXPECT_FALSE(load_snapshot(path).has_value());
}

TEST(Snapshot, MalformedFileThrowsInsteadOfGuessing) {
  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "snap_garbage.txt")
          .string();
  std::ofstream(path) << "not a snapshot\nround banana\n";
  EXPECT_THROW(load_snapshot(path), std::invalid_argument);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rbcast
