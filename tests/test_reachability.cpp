#include "radiobcast/core/reachability.h"

#include <gtest/gtest.h>

#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/placement.h"

namespace rbcast {
namespace {

TEST(Reachability, FaultFreeReachesEverything) {
  const Torus torus(12, 12);
  const auto res =
      honest_reachability(torus, FaultSet{}, {0, 0}, 1, Metric::kLInf);
  EXPECT_EQ(res.total_honest, 143);
  EXPECT_EQ(res.reachable_honest, 143);
  EXPECT_DOUBLE_EQ(res.fraction(), 1.0);
}

TEST(Reachability, FaultsBlockOnlyBeyondBarrier) {
  const Torus torus(12, 12);
  // Two full vertical strips of width 1 at r=1: everything between is cut.
  FaultSet faults;
  for (std::int32_t y = 0; y < 12; ++y) {
    faults.add(torus, {3, y});
    faults.add(torus, {9, y});
  }
  const auto res =
      honest_reachability(torus, faults, {0, 0}, 1, Metric::kLInf);
  EXPECT_LT(res.fraction(), 1.0);
  // Columns 4..8 (5 x 12 = 60 nodes) are unreachable.
  EXPECT_EQ(res.total_honest - res.reachable_honest, 60);
  // A node behind the barrier:
  EXPECT_FALSE(res.reachable[static_cast<std::size_t>(torus.index({6, 6}))]);
  EXPECT_TRUE(res.reachable[static_cast<std::size_t>(torus.index({1, 6}))]);
}

TEST(Reachability, FaultyNodesNeverReachable) {
  const Torus torus(12, 12);
  FaultSet faults(torus, {{5, 5}});
  const auto res =
      honest_reachability(torus, faults, {0, 0}, 1, Metric::kLInf);
  EXPECT_FALSE(res.reachable[static_cast<std::size_t>(torus.index({5, 5}))]);
}

TEST(Reachability, SectionSevenEquivalenceWithCrashFlooding) {
  // "The sole criterion for achievability is reachability": crash-stop
  // flooding commits exactly the reachable set, for arbitrary placements.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SimConfig cfg;
    cfg.width = cfg.height = 14;
    cfg.r = 1;
    cfg.metric = Metric::kLInf;
    cfg.protocol = ProtocolKind::kCrashFlood;
    cfg.adversary = AdversaryKind::kSilent;
    cfg.seed = seed;
    Torus torus(cfg.width, cfg.height);
    Rng rng(seed);
    const FaultSet faults = iid_faults(torus, 0.35, rng, cfg.source);
    const auto sim = run_simulation(cfg, faults);
    const auto reach = honest_reachability(torus, faults, cfg.source, cfg.r,
                                           cfg.metric);
    EXPECT_EQ(sim.correct_commits, reach.reachable_honest) << "seed=" << seed;
    // Node-by-node agreement.
    for (const Coord c : torus.all_coords()) {
      if (c == cfg.source || faults.contains(c)) continue;
      const auto idx = static_cast<std::size_t>(torus.index(c));
      const bool committed =
          sim.outcomes[idx] == NodeOutcome::kCommitted0 ||
          sim.outcomes[idx] == NodeOutcome::kCommitted1;
      EXPECT_EQ(committed, static_cast<bool>(reach.reachable[idx]))
          << "seed=" << seed << " node=" << to_string(c);
    }
  }
}

TEST(Reachability, EquivalenceHoldsUnderL2Too) {
  SimConfig cfg;
  cfg.width = cfg.height = 14;
  cfg.r = 2;
  cfg.metric = Metric::kL2;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.seed = 4;
  Torus torus(cfg.width, cfg.height);
  Rng rng(4);
  const FaultSet faults = iid_faults(torus, 0.4, rng, cfg.source);
  const auto sim = run_simulation(cfg, faults);
  const auto reach =
      honest_reachability(torus, faults, cfg.source, cfg.r, cfg.metric);
  EXPECT_EQ(sim.correct_commits, reach.reachable_honest);
}

TEST(Reachability, FaultySourceMeansNothingReachable) {
  const Torus torus(12, 12);
  FaultSet faults(torus, {{0, 0}});
  const auto res =
      honest_reachability(torus, faults, {0, 0}, 1, Metric::kLInf);
  EXPECT_EQ(res.reachable_honest, 0);
}

TEST(Percolation, KneeEstimateIsMonotoneInRadius) {
  // Richer neighborhoods survive more faults: the percolation knee moves
  // right as r grows.
  const double knee_r1 = estimate_percolation_knee(12, 12, 1, Metric::kLInf,
                                                   {0, 0}, 0.5, 3, 42);
  const double knee_r2 = estimate_percolation_knee(20, 20, 2, Metric::kLInf,
                                                   {0, 0}, 0.5, 3, 42);
  EXPECT_GT(knee_r1, 0.2);
  EXPECT_LT(knee_r1, 0.9);
  EXPECT_GT(knee_r2, knee_r1);
}

TEST(Percolation, KneeIsDeterministic) {
  const double a = estimate_percolation_knee(12, 12, 1, Metric::kLInf, {0, 0},
                                             0.5, 2, 7);
  const double b = estimate_percolation_knee(12, 12, 1, Metric::kLInf, {0, 0},
                                             0.5, 2, 7);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace rbcast
