#include "radiobcast/grid/neighborhood.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "radiobcast/grid/metric.h"

namespace rbcast {
namespace {

TEST(Neighborhood, SizesMatchClosedForms) {
  for (std::int32_t r = 1; r <= 6; ++r) {
    EXPECT_EQ(NeighborhoodTable::get(r, Metric::kLInf).size(),
              neighborhood_size(r, Metric::kLInf));
    EXPECT_EQ(NeighborhoodTable::get(r, Metric::kL2).size(),
              neighborhood_size(r, Metric::kL2));
  }
}

TEST(Neighborhood, ExcludesCenterIncludesBoundary) {
  const auto& t = NeighborhoodTable::get(3, Metric::kLInf);
  const auto offsets = t.offsets();
  EXPECT_EQ(std::count(offsets.begin(), offsets.end(), Offset{0, 0}), 0);
  EXPECT_EQ(std::count(offsets.begin(), offsets.end(), Offset{3, 3}), 1);
  EXPECT_EQ(std::count(offsets.begin(), offsets.end(), Offset{-3, 0}), 1);
}

TEST(Neighborhood, CacheReturnsSameInstance) {
  const auto& a = NeighborhoodTable::get(2, Metric::kLInf);
  const auto& b = NeighborhoodTable::get(2, Metric::kLInf);
  EXPECT_EQ(&a, &b);
  const auto& c = NeighborhoodTable::get(2, Metric::kL2);
  EXPECT_NE(&a, &c);
}

TEST(Neighborhood, OffsetsAreSymmetric) {
  for (const Metric m : {Metric::kLInf, Metric::kL2}) {
    const auto& t = NeighborhoodTable::get(3, m);
    std::set<std::pair<std::int32_t, std::int32_t>> seen;
    for (const Offset o : t.offsets()) seen.insert({o.dx, o.dy});
    for (const Offset o : t.offsets()) {
      EXPECT_TRUE(seen.count({-o.dx, -o.dy})) << to_string(o);
      EXPECT_TRUE(seen.count({o.dy, o.dx})) << to_string(o);
    }
  }
}

TEST(Neighborhood, MaterializedNeighborsWrap) {
  const Torus torus(10, 10);
  const auto& t = NeighborhoodTable::get(2, Metric::kLInf);
  const auto nbrs = t.neighbors(torus, {0, 0});
  EXPECT_EQ(nbrs.size(), 24u);
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), Coord{8, 8}), nbrs.end());
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), Coord{2, 2}), nbrs.end());
  EXPECT_EQ(std::find(nbrs.begin(), nbrs.end(), Coord{0, 0}), nbrs.end());
}

TEST(Neighborhood, ClosedNeighborsIncludeCenter) {
  const Torus torus(10, 10);
  const auto& t = NeighborhoodTable::get(1, Metric::kL2);
  const auto closed = t.closed_neighbors(torus, {5, 5});
  EXPECT_EQ(closed.size(), 5u);  // 4 L2 neighbors + center
  EXPECT_NE(std::find(closed.begin(), closed.end(), Coord{5, 5}),
            closed.end());
}

TEST(Neighborhood, PerturbedNeighborhoodLinfCount) {
  // pnbd(c) in L∞ is the (2r+3)x(2r+1) ∪ (2r+1)x(2r+3) plus shape minus the
  // center... easiest exact check: count = |(2r+3)^2 square| minus 4 corners
  // minus... just verify against a brute-force union.
  const Torus torus(20, 20);
  for (std::int32_t r = 1; r <= 3; ++r) {
    const auto pn = perturbed_neighborhood(torus, {10, 10}, r, Metric::kLInf);
    std::set<Coord> expected;
    const Offset shifts[4] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
    for (const Offset s : shifts) {
      const Coord center = torus.wrap(Coord{10, 10} + s);
      for (std::int32_t dx = -r; dx <= r; ++dx) {
        for (std::int32_t dy = -r; dy <= r; ++dy) {
          if (dx == 0 && dy == 0) continue;
          expected.insert(torus.wrap(center + Offset{dx, dy}));
        }
      }
    }
    EXPECT_EQ(pn.size(), expected.size());
    for (const Coord c : pn) EXPECT_TRUE(expected.count(c));
  }
}

TEST(Neighborhood, PerturbedNeighborhoodContainsCenterAndBeyond) {
  const Torus torus(20, 20);
  const auto pn = perturbed_neighborhood(torus, {10, 10}, 2, Metric::kLInf);
  // The center itself is a neighbor of its adjacent nodes.
  EXPECT_NE(std::find(pn.begin(), pn.end(), Coord{10, 10}), pn.end());
  // The corner of pnbd beyond nbd: (10-2, 10+3).
  EXPECT_NE(std::find(pn.begin(), pn.end(), Coord{8, 13}), pn.end());
  // Not beyond that.
  EXPECT_EQ(std::find(pn.begin(), pn.end(), Coord{6, 13}), pn.end());
}

TEST(Neighborhood, SortedAndUnique) {
  const Torus torus(16, 16);
  const auto pn = perturbed_neighborhood(torus, {3, 3}, 2, Metric::kL2);
  EXPECT_TRUE(std::is_sorted(pn.begin(), pn.end()));
  EXPECT_EQ(std::adjacent_find(pn.begin(), pn.end()), pn.end());
}

}  // namespace
}  // namespace rbcast
