#include "radiobcast/graph/graph_protocols.h"

#include <gtest/gtest.h>

#include "radiobcast/grid/torus.h"

namespace rbcast {
namespace {

GraphFaultSet no_faults(const RadioGraph& g) {
  return GraphFaultSet(static_cast<std::size_t>(g.node_count()), false);
}

// ---------------------------------------------------------------------------
// Engine basics
// ---------------------------------------------------------------------------

TEST(GraphNetwork, RequiresBehaviors) {
  RadioGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  GraphNetwork net(g);
  EXPECT_THROW(net.start(), std::logic_error);
}

TEST(GraphNetwork, BroadcastReachesGraphNeighborsOnly) {
  RadioGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  GraphNetwork net(g);
  net.set_behavior(0, std::make_unique<GraphSourceBehavior>(1));
  for (NodeId v = 1; v < 4; ++v) {
    net.set_behavior(v, std::make_unique<GraphCpaBehavior>(0, 0));
  }
  net.start();
  net.run_until_quiescent(10);
  EXPECT_TRUE(net.behavior(1)->committed_value().has_value());
  EXPECT_TRUE(net.behavior(2)->committed_value().has_value());
  EXPECT_FALSE(net.behavior(3)->committed_value().has_value());  // unreachable
}

// ---------------------------------------------------------------------------
// CPA on graphs
// ---------------------------------------------------------------------------

TEST(GraphCpa, CompleteGraphCommitsEveryone) {
  RadioGraph g(6);
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = a + 1; b < 6; ++b) g.add_edge(a, b);
  }
  const auto res = run_graph_simulation(g, 0, 2, GraphProtocol::kCpa,
                                        GraphAdversary::kSilent, no_faults(g));
  EXPECT_TRUE(res.success());
}

TEST(GraphCpa, MatchesGridCpaOnTorusGraph) {
  // CPA on the torus-as-graph must reach everyone fault-free, like the
  // native grid implementation.
  const RadioGraph g = make_torus_graph(10, 10, 1, false);
  const Torus torus(10, 10);
  const auto res = run_graph_simulation(g, torus.index({0, 0}), 0,
                                        GraphProtocol::kCpa,
                                        GraphAdversary::kSilent, no_faults(g));
  EXPECT_TRUE(res.success());
  EXPECT_EQ(res.honest_nodes, 99);
}

TEST(GraphCpa, NeverCommitsWrongUnderLiars) {
  const RadioGraph g = make_separation_graph();
  for (NodeId f = 1; f < g.node_count(); ++f) {
    GraphFaultSet faults = no_faults(g);
    faults[static_cast<std::size_t>(f)] = true;
    const auto res =
        run_graph_simulation(g, kSeparationSource, kSeparationT,
                             GraphProtocol::kCpa, GraphAdversary::kLying,
                             faults);
    EXPECT_EQ(res.wrong_commits, 0) << separation_node_name(f);
  }
}

// ---------------------------------------------------------------------------
// RPA on graphs
// ---------------------------------------------------------------------------

TEST(GraphRpa, CompleteGraphCommitsEveryone) {
  RadioGraph g(5);
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = a + 1; b < 5; ++b) g.add_edge(a, b);
  }
  const auto res = run_graph_simulation(g, 0, 1, GraphProtocol::kRpa,
                                        GraphAdversary::kSilent, no_faults(g));
  EXPECT_TRUE(res.success());
}

TEST(GraphRpa, TorusGraphFaultFree) {
  const RadioGraph g = make_torus_graph(8, 8, 1, false);
  const Torus torus(8, 8);
  const auto res = run_graph_simulation(g, torus.index({0, 0}), 1,
                                        GraphProtocol::kRpa,
                                        GraphAdversary::kSilent, no_faults(g));
  EXPECT_TRUE(res.success());
}

// ---------------------------------------------------------------------------
// The CPA ⊊ RPA separation ([Pelc-Peleg05], discussed in Section III)
// ---------------------------------------------------------------------------

TEST(Separation, CpaStallsFaultFree) {
  const RadioGraph g = make_separation_graph();
  const auto res =
      run_graph_simulation(g, kSeparationSource, kSeparationT,
                           GraphProtocol::kCpa, GraphAdversary::kSilent,
                           no_faults(g));
  EXPECT_FALSE(res.success());
  EXPECT_EQ(res.wrong_commits, 0);
  // Exactly the three source neighbors commit; all middlemen and u stall.
  EXPECT_EQ(res.correct_commits, 3);
  EXPECT_EQ(res.undecided, 10);
}

TEST(Separation, RpaCompletesFaultFree) {
  const RadioGraph g = make_separation_graph();
  const auto res =
      run_graph_simulation(g, kSeparationSource, kSeparationT,
                           GraphProtocol::kRpa, GraphAdversary::kSilent,
                           no_faults(g));
  EXPECT_TRUE(res.success());
}

TEST(Separation, RpaCompletesUnderEveryLegalPlacement) {
  // Exhaustive: RPA achieves reliable broadcast for EVERY legal placement
  // under both adversary types — the full quantifier of the separation
  // theorem, checkable because the placement space is tiny.
  const RadioGraph g = make_separation_graph();
  const auto placements =
      enumerate_legal_placements(g, kSeparationT, kSeparationSource);
  for (const auto& faults : placements) {
    for (const GraphAdversary adversary :
         {GraphAdversary::kSilent, GraphAdversary::kLying}) {
      const auto res = run_graph_simulation(g, kSeparationSource,
                                            kSeparationT, GraphProtocol::kRpa,
                                            adversary, faults);
      std::string placement_name = "{";
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (faults[static_cast<std::size_t>(v)]) {
          placement_name += separation_node_name(v) + " ";
        }
      }
      placement_name += "}";
      EXPECT_TRUE(res.success())
          << placement_name << " adversary="
          << (adversary == GraphAdversary::kSilent ? "silent" : "lying")
          << " correct=" << res.correct_commits
          << " undecided=" << res.undecided
          << " wrong=" << res.wrong_commits;
    }
  }
}

TEST(Separation, FaultySourceRejected) {
  const RadioGraph g = make_separation_graph();
  GraphFaultSet faults = no_faults(g);
  faults[kSeparationSource] = true;
  EXPECT_THROW(run_graph_simulation(g, kSeparationSource, kSeparationT,
                                    GraphProtocol::kRpa,
                                    GraphAdversary::kSilent, faults),
               std::invalid_argument);
}

}  // namespace
}  // namespace rbcast
