#include "radiobcast/protocols/bv_indirect.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"

namespace rbcast {
namespace {

SimConfig base_config(std::int32_t r, ProtocolKind kind) {
  SimConfig cfg;
  cfg.width = cfg.height = 8 * r + 4;
  cfg.r = r;
  cfg.metric = Metric::kLInf;
  cfg.protocol = kind;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = 33;
  return cfg;
}

TEST(BvIndirect, FloodFaultFreeFullCoverage) {
  SimConfig cfg = base_config(1, ProtocolKind::kBvIndirectFlood);
  cfg.t = byz_linf_achievable_max(1);
  const auto result = run_simulation(cfg, FaultSet{});
  EXPECT_TRUE(result.success());
}

TEST(BvIndirect, EarmarkedFaultFreeFullCoverage) {
  for (std::int32_t r = 1; r <= 2; ++r) {
    SimConfig cfg = base_config(r, ProtocolKind::kBvIndirectEarmarked);
    cfg.t = byz_linf_achievable_max(r);
    const auto result = run_simulation(cfg, FaultSet{});
    EXPECT_TRUE(result.success()) << "r=" << r;
  }
}

TEST(BvIndirect, EarmarkedUsesFarFewerMessagesThanFlood) {
  SimConfig flood = base_config(1, ProtocolKind::kBvIndirectFlood);
  SimConfig earmarked = base_config(1, ProtocolKind::kBvIndirectEarmarked);
  flood.t = earmarked.t = byz_linf_achievable_max(1);
  const auto rf = run_simulation(flood, FaultSet{});
  const auto re = run_simulation(earmarked, FaultSet{});
  EXPECT_TRUE(rf.success());
  EXPECT_TRUE(re.success());
  EXPECT_LT(re.transmissions, rf.transmissions);
}

TEST(BvIndirect, FloodAndEarmarkedAgreeOnOutcomes) {
  // Same faults, same seed: both relay modes must commit the same nodes.
  SimConfig flood = base_config(1, ProtocolKind::kBvIndirectFlood);
  SimConfig earmarked = base_config(1, ProtocolKind::kBvIndirectEarmarked);
  flood.t = earmarked.t = byz_linf_achievable_max(1);
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  Torus torus(flood.width, flood.height);
  Rng rng(77);
  const FaultSet faults = make_faults(placement, torus, flood.r, flood.metric,
                                      flood.t, flood.source, rng);
  const auto rf = run_simulation(flood, faults);
  const auto re = run_simulation(earmarked, faults);
  EXPECT_EQ(rf.correct_commits, re.correct_commits);
  EXPECT_EQ(rf.wrong_commits, re.wrong_commits);
  EXPECT_EQ(rf.undecided, re.undecided);
}

TEST(BvIndirect, SurvivesTrimmedCheckerboardAtThreshold) {
  for (std::int32_t r = 1; r <= 2; ++r) {
    const ProtocolKind kind = r == 1 ? ProtocolKind::kBvIndirectFlood
                                     : ProtocolKind::kBvIndirectEarmarked;
    SimConfig cfg = base_config(r, kind);
    cfg.t = byz_linf_achievable_max(r);
    PlacementConfig placement;
    placement.kind = PlacementKind::kCheckerboardStrip;
    placement.trim = true;
    Torus torus(cfg.width, cfg.height);
    Rng rng(1);
    const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    const auto result = run_simulation(cfg, faults);
    EXPECT_TRUE(result.success()) << "r=" << r;
  }
}

TEST(BvIndirect, StalledAtImpossibilityBudget) {
  SimConfig cfg = base_config(1, ProtocolKind::kBvIndirectFlood);
  cfg.t = byz_linf_impossible_min(1);
  PlacementConfig placement;
  placement.kind = PlacementKind::kCheckerboardStrip;
  placement.trim = false;
  Torus torus(cfg.width, cfg.height);
  Rng rng(1);
  const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, rng);
  ASSERT_EQ(max_closed_nbd_faults(torus, faults, cfg.r, cfg.metric), cfg.t);
  const auto result = run_simulation(cfg, faults);
  EXPECT_FALSE(result.success());
  EXPECT_GT(result.undecided, 0);
  EXPECT_EQ(result.wrong_commits, 0);
}

TEST(BvIndirect, LyingAdversaryNeverCausesWrongCommit) {
  for (const ProtocolKind kind :
       {ProtocolKind::kBvIndirectFlood, ProtocolKind::kBvIndirectEarmarked}) {
    SimConfig cfg = base_config(1, kind);
    cfg.t = byz_linf_achievable_max(1);
    cfg.adversary = AdversaryKind::kLying;
    PlacementConfig placement;
    placement.kind = PlacementKind::kRandomBounded;
    for (int rep = 0; rep < 3; ++rep) {
      Torus torus(cfg.width, cfg.height);
      Rng rng(90 + static_cast<std::uint64_t>(rep));
      const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                          cfg.t, cfg.source, rng);
      const auto result = run_simulation(cfg, faults);
      EXPECT_EQ(result.wrong_commits, 0)
          << to_string(kind) << " rep=" << rep;
      EXPECT_TRUE(result.success()) << to_string(kind) << " rep=" << rep;
    }
  }
}

TEST(BvIndirect, EarmarkedRequiresLinf) {
  SimConfig cfg = base_config(2, ProtocolKind::kBvIndirectEarmarked);
  cfg.metric = Metric::kL2;
  EXPECT_THROW(run_simulation(cfg, FaultSet{}), std::invalid_argument);
}

TEST(BvIndirect, BehaviorUnitRejectsImplausibleChains) {
  const Torus torus(20, 20);
  RadioNetwork net(torus, 2, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<BvIndirectBehavior>(
                            ProtocolParams{1, {0, 0}}, torus, 2,
                            Metric::kLInf, RelayMode::kFlood));
  }
  const Coord self{10, 10};
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<BvIndirectBehavior*>(net.behavior(self));

  // Chain with a hop longer than r: dropped.
  b->on_receive(ctx, {{9, 9}, make_heard({{4, 4}, {9, 9}}, {0, 0}, 1)});
  // Chain with a repeated node: dropped.
  b->on_receive(ctx, {{9, 9}, make_heard({{9, 9}, {8, 8}, {9, 9}}, {7, 7}, 1)});
  // Outermost relayer != transmitter: dropped.
  b->on_receive(ctx, {{9, 9}, make_heard({{8, 8}}, {7, 7}, 1)});
  // More than 3 relayers: dropped.
  b->on_receive(ctx,
                {{9, 9},
                 make_heard({{6, 6}, {7, 7}, {8, 8}, {9, 9}}, {5, 5}, 1)});
  b->on_round_end(ctx);
  EXPECT_EQ(b->determinations(), 0);
}

TEST(BvIndirect, BehaviorUnitDeterminationViaDisjointChains) {
  const Torus torus(20, 20);
  const std::int64_t t = 1;
  RadioNetwork net(torus, 2, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<BvIndirectBehavior>(
                            ProtocolParams{t, {0, 0}}, torus, 2,
                            Metric::kLInf, RelayMode::kFlood));
  }
  const Coord self{10, 10};
  const Coord origin{14, 10};  // 4 away: needs 2-intermediate chains
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<BvIndirectBehavior*>(net.behavior(self));
  // Two node-disjoint chains origin -> a -> b -> self, all inside
  // nbd((12,10)).
  b->on_receive(ctx,
                {{11, 10}, make_heard({{13, 10}, {11, 10}}, origin, 1)});
  b->on_round_end(ctx);
  EXPECT_EQ(b->determinations(), 0);  // one chain < t+1 = 2
  b->on_receive(ctx,
                {{11, 11}, make_heard({{13, 11}, {11, 11}}, origin, 1)});
  b->on_round_end(ctx);
  EXPECT_EQ(b->determinations(), 1);
}

TEST(BvIndirect, BehaviorUnitConflictingChainsDoNotCount) {
  const Torus torus(20, 20);
  const std::int64_t t = 1;
  RadioNetwork net(torus, 2, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<BvIndirectBehavior>(
                            ProtocolParams{t, {0, 0}}, torus, 2,
                            Metric::kLInf, RelayMode::kFlood));
  }
  const Coord self{10, 10};
  const Coord origin{14, 10};
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<BvIndirectBehavior*>(net.behavior(self));
  // Two chains sharing the intermediate (13,10): conflict, still < t+1.
  b->on_receive(ctx,
                {{11, 10}, make_heard({{13, 10}, {11, 10}}, origin, 1)});
  b->on_receive(ctx,
                {{11, 11}, make_heard({{13, 10}, {11, 11}}, origin, 1)});
  b->on_round_end(ctx);
  EXPECT_EQ(b->determinations(), 0);
}

TEST(BvIndirect, RadiusGuardRejectsKeyCollidingRadii) {
  // pack_report_key encodes origin-relative chain deltas (bounded by 3r) in
  // 8-bit two's complement, injective only for r <= kMaxReportKeyRadius.
  const ProtocolParams params{1, {0, 0}};
  const std::int32_t rmax = BvIndirectBehavior::kMaxReportKeyRadius;
  EXPECT_EQ(rmax, 42);
  {
    const Torus torus(8 * rmax + 4, 8 * rmax + 4);
    EXPECT_NO_THROW(BvIndirectBehavior(params, torus, rmax, Metric::kLInf,
                                       RelayMode::kFlood));
  }
  {
    const Torus torus(8 * (rmax + 1) + 4, 8 * (rmax + 1) + 4);
    EXPECT_THROW(BvIndirectBehavior(params, torus, rmax + 1, Metric::kLInf,
                                    RelayMode::kFlood),
                 std::invalid_argument);
  }
  {
    const Torus torus(12, 12);
    EXPECT_THROW(
        BvIndirectBehavior(params, torus, 0, Metric::kLInf, RelayMode::kFlood),
        std::invalid_argument);
  }
}

}  // namespace
}  // namespace rbcast
