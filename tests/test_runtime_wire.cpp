// Wire-format tests: encode/decode roundtrips for every packet shape and
// rejection of malformed datagrams (runtime/wire.h).

#include "radiobcast/runtime/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "radiobcast/net/message.h"

namespace rbcast {
namespace {

WireMessage protocol_msg(Message msg, std::int64_t round) {
  WireMessage wm;
  wm.kind = WireKind::kProtocol;
  wm.round = round;
  wm.msg = msg;
  return wm;
}

WireMessage round_done(std::int64_t round, std::uint32_t count) {
  WireMessage wm;
  wm.kind = WireKind::kRoundDone;
  wm.round = round;
  wm.done_count = count;
  return wm;
}

TEST(MessageId, PacksAndUnpacksBothHalves) {
  const std::uint64_t id = pack_message_id(0xDEADBEEFu, 0x01020304u);
  EXPECT_EQ(message_id_sender(id), 0xDEADBEEFu);
  EXPECT_EQ(message_id_seq(id), 0x01020304u);
  EXPECT_EQ(pack_message_id(0, 0), 0u);
  EXPECT_EQ(message_id_sender(pack_message_id(7, 0)), 7u);
  EXPECT_EQ(message_id_seq(pack_message_id(0, 7)), 7u);
}

TEST(WireRoundtrip, DataPacketWithCommittedAndHeard) {
  Packet packet;
  packet.kind = PacketKind::kData;
  packet.sender = 42;
  packet.entries.push_back(
      WireEntry{pack_message_id(42, 0),
                protocol_msg(make_committed({3, 5}, 1), 7)});
  packet.entries.push_back(WireEntry{
      pack_message_id(42, 1),
      protocol_msg(make_heard({{1, 2}, {3, 4}, {5, 6}}, {3, 5}, 0), 7)});
  packet.entries.push_back(WireEntry{pack_message_id(42, 2), round_done(7, 2)});

  const std::vector<std::uint8_t> bytes = encode_packet(packet);
  ASSERT_LE(bytes.size(), kMaxDatagram);

  Packet decoded;
  ASSERT_TRUE(decode_packet(bytes, decoded));
  EXPECT_EQ(decoded, packet);
}

TEST(WireRoundtrip, NegativeCoordsAndRoundsSurvive) {
  Packet packet;
  packet.sender = 0;
  Message msg = make_committed({-3, -7}, 0);
  packet.entries.push_back(WireEntry{1, protocol_msg(msg, -1)});
  const std::vector<std::uint8_t> bytes = encode_packet(packet);
  Packet decoded;
  ASSERT_TRUE(decode_packet(bytes, decoded));
  EXPECT_EQ(decoded, packet);
}

TEST(WireRoundtrip, AckPacket) {
  Packet packet;
  packet.kind = PacketKind::kAck;
  packet.sender = 9;
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    packet.acks.push_back(pack_message_id(3, seq));
  }
  const std::vector<std::uint8_t> bytes = encode_packet(packet);
  Packet decoded;
  ASSERT_TRUE(decode_packet(bytes, decoded));
  EXPECT_EQ(decoded, packet);
}

TEST(WireRoundtrip, FullBatchFitsInOneDatagram) {
  Packet packet;
  packet.sender = 1;
  for (std::size_t i = 0; i < kMaxBatch; ++i) {
    // Worst-case payload: a full relayer chain.
    packet.entries.push_back(WireEntry{
        pack_message_id(1, static_cast<std::uint32_t>(i)),
        protocol_msg(
            make_heard({{100, 100}, {-100, -100}, {7, 7}, {8, 8}}, {0, 0}, 1),
            1 << 20)});
  }
  const std::vector<std::uint8_t> bytes = encode_packet(packet);
  EXPECT_LE(bytes.size(), kMaxDatagram);
  Packet decoded;
  ASSERT_TRUE(decode_packet(bytes, decoded));
  EXPECT_EQ(decoded, packet);
}

TEST(WireRoundtrip, FullAckBatchFitsInOneDatagram) {
  Packet packet;
  packet.kind = PacketKind::kAck;
  packet.sender = 2;
  for (std::size_t i = 0; i < kMaxAcksPerPacket; ++i) {
    packet.acks.push_back(pack_message_id(2, static_cast<std::uint32_t>(i)));
  }
  const std::vector<std::uint8_t> bytes = encode_packet(packet);
  EXPECT_LE(bytes.size(), kMaxDatagram);
  Packet decoded;
  ASSERT_TRUE(decode_packet(bytes, decoded));
  EXPECT_EQ(decoded, packet);
}

TEST(WireEncode, RejectsOversizedBatches) {
  Packet packet;
  for (std::size_t i = 0; i <= kMaxBatch; ++i) {
    packet.entries.push_back(WireEntry{i, round_done(0, 0)});
  }
  EXPECT_THROW(encode_packet(packet), std::length_error);

  Packet acks;
  acks.kind = PacketKind::kAck;
  acks.acks.assign(kMaxAcksPerPacket + 1, 0);
  EXPECT_THROW(encode_packet(acks), std::length_error);
}

TEST(WireDecode, RejectsMalformedDatagrams) {
  Packet packet;
  packet.sender = 5;
  packet.entries.push_back(
      WireEntry{pack_message_id(5, 0), protocol_msg(make_committed({1, 1}, 1), 3)});
  const std::vector<std::uint8_t> good = encode_packet(packet);
  Packet out;
  ASSERT_TRUE(decode_packet(good, out));

  // Empty datagram.
  EXPECT_FALSE(decode_packet(std::vector<std::uint8_t>{}, out));

  // Wrong magic byte.
  std::vector<std::uint8_t> bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_packet(bad, out));

  // Unknown version.
  bad = good;
  bad[1] = 0xEE;
  EXPECT_FALSE(decode_packet(bad, out));

  // Every possible truncation must be rejected, never read out of bounds.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(decode_packet(
        std::span<const std::uint8_t>(good.data(), len), out))
        << "truncation at " << len << " bytes decoded";
  }

  // Trailing garbage (a datagram must be consumed exactly).
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(decode_packet(bad, out));
}

TEST(WireDecode, RejectsCorruptedInteriorBytes) {
  // Flip each byte of a valid encoding in turn; decode must either reject the
  // datagram or produce *some* packet — but never crash or hang. (Most flips
  // hit payload bytes and still decode; header/count flips must be caught.)
  Packet packet;
  packet.sender = 6;
  packet.entries.push_back(WireEntry{
      pack_message_id(6, 1),
      protocol_msg(make_heard({{1, 1}, {2, 2}}, {0, 0}, 1), 2)});
  const std::vector<std::uint8_t> good = encode_packet(packet);
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0x5A;
    Packet out;
    (void)decode_packet(bad, out);  // must not crash; return value may vary
  }
  SUCCEED();
}

}  // namespace
}  // namespace rbcast
