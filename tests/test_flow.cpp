#include "radiobcast/paths/flow.h"

#include <gtest/gtest.h>

namespace rbcast {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow f(2);
  const int e = f.add_edge(0, 1, 5);
  EXPECT_EQ(f.solve(0, 1), 5);
  EXPECT_EQ(f.flow_on(e), 5);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlow f(3);
  f.add_edge(0, 1, 10);
  const int e = f.add_edge(1, 2, 3);
  EXPECT_EQ(f.solve(0, 2), 3);
  EXPECT_EQ(f.flow_on(e), 3);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow f(4);
  f.add_edge(0, 1, 2);
  f.add_edge(1, 3, 2);
  f.add_edge(0, 2, 3);
  f.add_edge(2, 3, 3);
  EXPECT_EQ(f.solve(0, 3), 5);
}

TEST(MaxFlow, ClassicDiamondWithCross) {
  // The textbook example where augmenting must push back across the middle.
  MaxFlow f(4);
  f.add_edge(0, 1, 1);
  f.add_edge(0, 2, 1);
  f.add_edge(1, 2, 1);
  f.add_edge(1, 3, 1);
  f.add_edge(2, 3, 1);
  EXPECT_EQ(f.solve(0, 3), 2);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.add_edge(0, 1, 7);
  f.add_edge(2, 3, 7);
  EXPECT_EQ(f.solve(0, 3), 0);
}

TEST(MaxFlow, SourceEqualsSink) {
  MaxFlow f(2);
  f.add_edge(0, 1, 1);
  EXPECT_EQ(f.solve(0, 0), 0);
}

TEST(MaxFlow, ZeroCapacityEdgeCarriesNothing) {
  MaxFlow f(2);
  const int e = f.add_edge(0, 1, 0);
  EXPECT_EQ(f.solve(0, 1), 0);
  EXPECT_EQ(f.flow_on(e), 0);
}

TEST(MaxFlow, DecomposeUnitPaths) {
  // Two vertex-disjoint unit paths 0->1->3 and 0->2->3.
  MaxFlow f(4);
  f.add_edge(0, 1, 1);
  f.add_edge(1, 3, 1);
  f.add_edge(0, 2, 1);
  f.add_edge(2, 3, 1);
  EXPECT_EQ(f.solve(0, 3), 2);
  const auto paths = f.decompose_unit_paths(0, 3);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
  }
  EXPECT_NE(paths[0][1], paths[1][1]);
}

TEST(MaxFlow, DecomposeEmptyWhenNoFlow) {
  MaxFlow f(3);
  f.add_edge(0, 1, 1);
  EXPECT_EQ(f.solve(0, 2), 0);
  EXPECT_TRUE(f.decompose_unit_paths(0, 2).empty());
}

TEST(MaxFlow, VertexSplitCountsDisjointPaths) {
  // K4 minus nothing: vertex connectivity between opposite nodes of a 4-cycle
  // with a chord. Grid-style check of the node-splitting pattern:
  // nodes 0..3; edges 0-1, 0-2, 1-3, 2-3, 1-2. Internally disjoint 0->3
  // paths: {0,1,3} and {0,2,3} -> 2.
  const int n = 4;
  MaxFlow f(2 * n);
  auto in = [](int v) { return 2 * v; };
  auto out = [](int v) { return 2 * v + 1; };
  for (int v = 0; v < n; ++v) f.add_edge(in(v), out(v), v == 0 || v == 3 ? 10 : 1);
  auto undirected = [&](int a, int b) {
    f.add_edge(out(a), in(b), 1);
    f.add_edge(out(b), in(a), 1);
  };
  undirected(0, 1);
  undirected(0, 2);
  undirected(1, 3);
  undirected(2, 3);
  undirected(1, 2);
  EXPECT_EQ(f.solve(out(0), in(3)), 2);
}

TEST(MaxFlow, LargeUnitGridIsFast) {
  // Smoke test: a 32x32 unit-capacity grid flows corner to corner quickly.
  const int side = 32;
  auto id = [&](int x, int y) { return y * side + x; };
  MaxFlow f(side * side);
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      if (x + 1 < side) f.add_edge(id(x, y), id(x + 1, y), 1);
      if (y + 1 < side) f.add_edge(id(x, y), id(x, y + 1), 1);
    }
  }
  EXPECT_EQ(f.solve(id(0, 0), id(side - 1, side - 1)), 2);
}

}  // namespace
}  // namespace rbcast
