#include "radiobcast/paths/packing.h"

#include <gtest/gtest.h>

#include "radiobcast/util/rng.h"

namespace rbcast {
namespace {

NodeMask mask_of(std::initializer_list<int> bits) {
  NodeMask m;
  for (const int b : bits) m.set(static_cast<std::size_t>(b));
  return m;
}

TEST(Packing, EmptyInput) {
  const auto r = max_disjoint_packing(std::vector<NodeMask>{});
  EXPECT_EQ(r.count, 0);
  EXPECT_TRUE(r.chosen.empty());
}

TEST(Packing, AllDisjoint) {
  const std::vector<NodeMask> sets = {mask_of({0}), mask_of({1}),
                                      mask_of({2, 3})};
  const auto r = max_disjoint_packing(sets);
  EXPECT_EQ(r.count, 3);
}

TEST(Packing, AllConflict) {
  const std::vector<NodeMask> sets = {mask_of({0, 1}), mask_of({1, 2}),
                                      mask_of({0, 2})};
  const auto r = max_disjoint_packing(sets);
  EXPECT_EQ(r.count, 1);
}

TEST(Packing, EmptyMasksAlwaysTaken) {
  const std::vector<NodeMask> sets = {NodeMask{}, NodeMask{}, mask_of({0}),
                                      mask_of({0})};
  const auto r = max_disjoint_packing(sets);
  EXPECT_EQ(r.count, 3);  // two empties + one of the conflicting pair
}

TEST(Packing, GreedyWouldFailButExactSucceeds) {
  // A small set {0,1} blocks two larger disjoint sets {0,2,3} and {1,4,5};
  // sorting by size tries the small one first, so the search must backtrack
  // to find the optimum of 2.
  const std::vector<NodeMask> sets = {mask_of({0, 1}), mask_of({0, 2, 3}),
                                      mask_of({1, 4, 5})};
  const auto r = max_disjoint_packing(sets);
  EXPECT_EQ(r.count, 2);
}

TEST(Packing, ChosenIsValidPacking) {
  const std::vector<NodeMask> sets = {mask_of({0, 1}), mask_of({2}),
                                      mask_of({1, 2}), mask_of({3, 4}),
                                      mask_of({0, 4})};
  const auto r = max_disjoint_packing(sets);
  NodeMask used;
  for (const int i : r.chosen) {
    EXPECT_TRUE((sets[static_cast<std::size_t>(i)] & used).none());
    used |= sets[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(static_cast<int>(r.chosen.size()), r.count);
  EXPECT_EQ(r.count, 3);  // {2}? no: {0,1},{3,4} or {2}... optimum is 3: {0,1}+{2}+{3,4}
}

TEST(Packing, TargetEarlyExitStillValid) {
  std::vector<NodeMask> sets;
  for (int i = 0; i < 20; ++i) sets.push_back(mask_of({i}));
  const auto r = max_disjoint_packing(sets, 5);
  EXPECT_GE(r.count, 5);
  NodeMask used;
  for (const int i : r.chosen) {
    EXPECT_TRUE((sets[static_cast<std::size_t>(i)] & used).none());
    used |= sets[static_cast<std::size_t>(i)];
  }
}

TEST(Packing, TargetLargerThanOptimumReturnsOptimum) {
  const std::vector<NodeMask> sets = {mask_of({0}), mask_of({0}),
                                      mask_of({0})};
  const auto r = max_disjoint_packing(sets, 10);
  EXPECT_EQ(r.count, 1);
}

TEST(Packing, DuplicateSetsCountOnce) {
  const std::vector<NodeMask> sets = {mask_of({1, 2}), mask_of({1, 2}),
                                      mask_of({3})};
  const auto r = max_disjoint_packing(sets);
  EXPECT_EQ(r.count, 2);
}

TEST(Packing, ExhaustedBudgetStillReturnsValidPacking) {
  // Many heavily-overlapping masks with a tiny search budget: the result may
  // be suboptimal but must remain a genuine disjoint family (the soundness
  // property the decider depends on).
  Rng rng(99);
  std::vector<NodeMask> sets;
  for (int i = 0; i < 24; ++i) {
    NodeMask m;
    for (int j = 0; j < 3; ++j) m.set(rng.below(10));
    sets.push_back(m);
  }
  const auto r = max_disjoint_packing(sets, /*target=*/0, /*node_budget=*/8);
  NodeMask used;
  for (const int i : r.chosen) {
    EXPECT_TRUE((sets[static_cast<std::size_t>(i)] & used).none());
    used |= sets[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(static_cast<int>(r.chosen.size()), r.count);
  EXPECT_GE(r.count, 1);  // the greedy seed guarantees at least one
}

TEST(Packing, GreedySeedMeansBudgetNeverUndercutsGreedy) {
  // Even with a zero budget the answer is at least the greedy packing along
  // the size-sorted order.
  const std::vector<NodeMask> sets = {mask_of({0}), mask_of({1}),
                                      mask_of({2}), mask_of({0, 1, 2})};
  const auto r = max_disjoint_packing(sets, 0, /*node_budget=*/0);
  EXPECT_GE(r.count, 3);
}

TEST(Packing, RandomInstancesMatchBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 3 + static_cast<int>(rng.below(8));
    std::vector<NodeMask> sets;
    for (int i = 0; i < n; ++i) {
      NodeMask m;
      const int k = 1 + static_cast<int>(rng.below(3));
      for (int j = 0; j < k; ++j) m.set(rng.below(8));
      sets.push_back(m);
    }
    // Brute force over all subsets.
    int best = 0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      NodeMask used;
      bool ok = true;
      int cnt = 0;
      for (int i = 0; i < n && ok; ++i) {
        if (!(mask & (1 << i))) continue;
        if ((sets[static_cast<std::size_t>(i)] & used).any()) ok = false;
        used |= sets[static_cast<std::size_t>(i)];
        ++cnt;
      }
      if (ok) best = std::max(best, cnt);
    }
    EXPECT_EQ(max_disjoint_packing(sets).count, best) << "trial " << trial;
  }
}

Interior interior_of(std::initializer_list<std::uint32_t> ids) {
  Interior in;
  for (const std::uint32_t id : ids) in.add(id);
  return in;
}

TEST(Interior, AddKeepsSortedAndIntersectDetectsSharedIds) {
  const Interior a = interior_of({7, 3, 9});
  const Interior b = interior_of({1, 9});
  const Interior c = interior_of({2, 4});
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(c.intersects(b));
  EXPECT_FALSE(Interior{}.intersects(a));
  EXPECT_TRUE(Interior{}.empty());
}

TEST(InteriorPacking, MirrorsMaskOverloadOnFixedCases) {
  // Same conflict structure as the mask tests above — the Interior overload
  // must return the same count and the same chosen indices.
  struct Case {
    std::vector<std::vector<int>> sets;
    int target = 0;
  };
  const std::vector<Case> cases = {
      {{{0, 1}, {1, 2}, {0, 2}}, 0},
      {{{}, {}, {0}, {0}}, 0},
      {{{0, 1}, {0, 2, 3}, {1, 4, 5}}, 0},
      {{{0, 1}, {2}, {1, 2}, {3, 4}, {0, 4}}, 0},
      {{{0}, {0}, {0}}, 10},
      {{{1, 2}, {1, 2}, {3}}, 0},
  };
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::vector<NodeMask> masks;
    std::vector<Interior> interiors;
    for (const auto& ids : cases[ci].sets) {
      NodeMask m;
      Interior in;
      for (const int id : ids) {
        m.set(static_cast<std::size_t>(id));
        in.add(static_cast<std::uint32_t>(id));
      }
      masks.push_back(m);
      interiors.push_back(in);
    }
    const auto rm = max_disjoint_packing(masks, cases[ci].target);
    const auto ri = max_disjoint_packing(
        std::span<const Interior>(interiors), cases[ci].target);
    EXPECT_EQ(rm.count, ri.count) << "case " << ci;
    EXPECT_EQ(rm.chosen, ri.chosen) << "case " << ci;
  }
}

TEST(InteriorPacking, RandomInstancesMatchMaskOverloadExactly) {
  // The incremental determination engine depends on the two overloads
  // exploring the same search tree: identical counts AND identical chosen
  // indices, across targets and budgets.
  Rng rng(7331);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(12));
    std::vector<NodeMask> masks;
    std::vector<Interior> interiors;
    for (int i = 0; i < n; ++i) {
      NodeMask m;
      Interior in;
      const int k = static_cast<int>(rng.below(4));  // 0..3 interior nodes
      for (int j = 0; j < k; ++j) {
        const int id = static_cast<int>(rng.below(9));
        if (!m.test(static_cast<std::size_t>(id))) {
          m.set(static_cast<std::size_t>(id));
          in.add(static_cast<std::uint32_t>(id));
        }
      }
      masks.push_back(m);
      interiors.push_back(in);
    }
    const int target = static_cast<int>(rng.below(4));  // 0..3
    const std::int64_t budget =
        rng.below(2) == 0 ? 20000 : static_cast<std::int64_t>(rng.below(16));
    const auto rm = max_disjoint_packing(masks, target, budget);
    const auto ri = max_disjoint_packing(std::span<const Interior>(interiors),
                                         target, budget);
    EXPECT_EQ(rm.count, ri.count) << "trial " << trial;
    EXPECT_EQ(rm.chosen, ri.chosen) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rbcast
