// Perfect-link property tests under deterministic fault injection
// (runtime/perfect_link.h + FaultInjectionTransport): no loss, no
// duplication, per-sender FIFO — the three guarantees the runtime's round
// barrier is built on.

#include "radiobcast/runtime/perfect_link.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "radiobcast/net/message.h"
#include "radiobcast/runtime/transport.h"
#include "radiobcast/runtime/wire.h"

namespace rbcast {
namespace {

using std::chrono::milliseconds;

WireMessage tagged(std::int64_t round) {
  // The round tag doubles as the payload sequence number for FIFO checks.
  WireMessage wm;
  wm.kind = WireKind::kRoundDone;
  wm.round = round;
  wm.done_count = static_cast<std::uint32_t>(round);
  return wm;
}

/// Zero RTO: every tick() retransmits all unacked batches, so lossy-fabric
/// tests converge in iterations instead of wall-clock backoff waits.
PerfectLink::Options eager_options() {
  PerfectLink::Options opts;
  opts.initial_rto = milliseconds(0);
  opts.max_rto = milliseconds(0);
  return opts;
}

struct LinkPair {
  FaultInjectionTransport::Options fault_opts;
  FaultInjectionTransport ta;
  FaultInjectionTransport tb;
  PerfectLink a;
  PerfectLink b;

  explicit LinkPair(FaultInjectionTransport::Options opts,
                    PerfectLink::Options link_opts = eager_options())
      : fault_opts(opts),
        ta(0, opts),
        tb(1, opts),
        a(0, ta, link_opts),
        b(1, tb, link_opts) {
    ta.set_peers({&ta, &tb});
    tb.set_peers({&ta, &tb});
  }

  /// One scheduling step for both endpoints.
  void pump(std::vector<ReceivedMessage>& rx_a,
            std::vector<ReceivedMessage>& rx_b) {
    const auto now = std::chrono::steady_clock::now();
    a.poll(rx_a);
    b.poll(rx_b);
    a.tick(now);
    b.tick(now);
  }
};

// Direct unit tests of the fault shim itself — the link-level property tests
// below only prove the *link* masks these faults, not that the shim actually
// injects them in the advertised shapes.

TEST(FaultInjectionTransport, DropPathDestroysDatagrams) {
  FaultInjectionTransport::Options opts;
  opts.drop_p = 1.0;
  FaultInjectionTransport a(0, opts), b(1, opts);
  a.set_peers({&a, &b});
  b.set_peers({&a, &b});
  a.send(1, {1, 2, 3});
  Datagram d;
  EXPECT_FALSE(b.try_receive(d));
}

TEST(FaultInjectionTransport, DuplicatePathInjectsIdenticalCopies) {
  FaultInjectionTransport::Options opts;
  opts.duplicate_p = 1.0;
  FaultInjectionTransport a(0, opts), b(1, opts);
  a.set_peers({&a, &b});
  b.set_peers({&a, &b});
  a.send(1, {7, 8});
  Datagram first, second, third;
  ASSERT_TRUE(b.try_receive(first));
  ASSERT_TRUE(b.try_receive(second));
  EXPECT_EQ(first.from, 0u);
  EXPECT_EQ(second.from, 0u);
  EXPECT_EQ(first.bytes, (std::vector<std::uint8_t>{7, 8}));
  EXPECT_EQ(second.bytes, first.bytes);
  EXPECT_FALSE(b.try_receive(third));  // exactly two copies, not more
}

TEST(FaultInjectionTransport, ReorderPathSwapsConsecutiveDatagrams) {
  FaultInjectionTransport::Options opts;
  opts.reorder_p = 1.0;
  FaultInjectionTransport a(0, opts), b(1, opts);
  a.set_peers({&a, &b});
  b.set_peers({&a, &b});
  a.send(1, {1});
  Datagram d;
  EXPECT_FALSE(b.try_receive(d));  // first datagram held back
  a.send(1, {2});  // releases the held one *behind* this send
  ASSERT_TRUE(b.try_receive(d));
  EXPECT_EQ(d.bytes, (std::vector<std::uint8_t>{2}));
  ASSERT_TRUE(b.try_receive(d));
  EXPECT_EQ(d.bytes, (std::vector<std::uint8_t>{1}));
  EXPECT_FALSE(b.try_receive(d));
}

TEST(FaultInjectionTransport, SameSeedYieldsSameFaultSchedule) {
  FaultInjectionTransport::Options opts;
  opts.drop_p = 0.4;
  opts.duplicate_p = 0.3;
  opts.seed = 99;
  std::vector<std::vector<std::uint8_t>> runs[2];
  for (auto& run : runs) {
    FaultInjectionTransport a(0, opts), b(1, opts);
    a.set_peers({&a, &b});
    b.set_peers({&a, &b});
    for (std::uint8_t i = 0; i < 50; ++i) a.send(1, {i});
    Datagram d;
    while (b.try_receive(d)) run.push_back(d.bytes);
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_LT(runs[0].size(), 50u);   // drops happened
  // Duplicates happened too: some byte appears twice.
  bool any_dup = false;
  for (std::size_t i = 1; i < runs[0].size(); ++i) {
    any_dup = any_dup || runs[0][i] == runs[0][i - 1];
  }
  EXPECT_TRUE(any_dup);
}

TEST(PerfectLink, DeliversInOrderOverCleanTransport) {
  // Default RTO: acks arrive within microseconds on the in-memory fabric,
  // far inside the 20ms backoff, so a clean run never retransmits.
  LinkPair pair({}, PerfectLink::Options());
  const int kCount = 100;
  for (int i = 0; i < kCount; ++i) pair.a.send(1, tagged(i));
  pair.a.flush();

  std::vector<ReceivedMessage> rx_a, rx_b;
  for (int step = 0; step < 100 && !pair.a.all_acked(); ++step) {
    pair.pump(rx_a, rx_b);
  }
  ASSERT_EQ(rx_b.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(rx_b[static_cast<std::size_t>(i)].from, 0u);
    EXPECT_EQ(rx_b[static_cast<std::size_t>(i)].msg.round, i);
  }
  EXPECT_TRUE(pair.a.all_acked());
  EXPECT_EQ(pair.a.stats().packets_retransmitted, 0u);
  EXPECT_EQ(pair.b.stats().duplicates_dropped, 0u);
  // kMaxBatch messages ride per datagram: 100 messages need only 13 packets.
  EXPECT_EQ(pair.a.stats().packets_sent,
            (kCount + kMaxBatch - 1) / kMaxBatch);
}

TEST(PerfectLink, NoLossNoDupFifoUnderDropDuplicateReorder) {
  FaultInjectionTransport::Options faults;
  faults.drop_p = 0.3;
  faults.duplicate_p = 0.3;
  faults.reorder_p = 0.3;
  faults.seed = 20260809;
  LinkPair pair(faults);

  const int kCount = 200;
  for (int i = 0; i < kCount; ++i) pair.a.send(1, tagged(i));
  pair.a.flush();

  std::vector<ReceivedMessage> rx_a, rx_b;
  for (int step = 0; step < 20000 && !pair.a.all_acked(); ++step) {
    pair.pump(rx_a, rx_b);
  }

  // No loss: everything sent arrived, sender saw every ack.
  EXPECT_TRUE(pair.a.all_acked());
  ASSERT_EQ(rx_b.size(), static_cast<std::size_t>(kCount));
  // No duplication + FIFO: delivered exactly once, in send order.
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(rx_b[static_cast<std::size_t>(i)].msg.round, i)
        << "out-of-order or duplicated delivery at position " << i;
  }
  // The fabric really was hostile: retransmits happened and duplicate copies
  // reached the receiver (and were dropped there, not delivered).
  EXPECT_GT(pair.a.stats().packets_retransmitted, 0u);
  EXPECT_GT(pair.b.stats().duplicates_dropped, 0u);
}

TEST(PerfectLink, BidirectionalTrafficKeepsStreamsIndependent) {
  FaultInjectionTransport::Options faults;
  faults.drop_p = 0.25;
  faults.reorder_p = 0.25;
  faults.seed = 7;
  LinkPair pair(faults);

  const int kCount = 80;
  for (int i = 0; i < kCount; ++i) {
    pair.a.send(1, tagged(i));
    pair.b.send(0, tagged(1000 + i));
  }
  pair.a.flush();
  pair.b.flush();

  std::vector<ReceivedMessage> rx_a, rx_b;
  for (int step = 0;
       step < 20000 && !(pair.a.all_acked() && pair.b.all_acked()); ++step) {
    pair.pump(rx_a, rx_b);
  }
  ASSERT_EQ(rx_b.size(), static_cast<std::size_t>(kCount));
  ASSERT_EQ(rx_a.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(rx_b[static_cast<std::size_t>(i)].msg.round, i);
    EXPECT_EQ(rx_a[static_cast<std::size_t>(i)].msg.round, 1000 + i);
  }
}

TEST(PerfectLink, PerDestinationSequencesLeaveNoGaps) {
  // Three-party: node 0 interleaves sends to 1 and 2. Each receiver's stream
  // must be gap-free (per-destination sequence numbers, not a global one).
  FaultInjectionTransport::Options faults;
  faults.drop_p = 0.2;
  faults.seed = 99;
  FaultInjectionTransport t0(0, faults), t1(1, faults), t2(2, faults);
  t0.set_peers({&t0, &t1, &t2});
  t1.set_peers({&t0, &t1, &t2});
  t2.set_peers({&t0, &t1, &t2});
  PerfectLink l0(0, t0, eager_options());
  PerfectLink l1(1, t1, eager_options());
  PerfectLink l2(2, t2, eager_options());

  const int kCount = 50;
  for (int i = 0; i < kCount; ++i) {
    l0.send(1, tagged(i));
    l0.send(2, tagged(100 + i));
  }
  l0.flush();

  std::vector<ReceivedMessage> rx0, rx1, rx2;
  for (int step = 0; step < 20000 && !l0.all_acked(); ++step) {
    const auto now = std::chrono::steady_clock::now();
    l0.poll(rx0);
    l1.poll(rx1);
    l2.poll(rx2);
    l0.tick(now);
    l1.tick(now);
    l2.tick(now);
  }
  ASSERT_EQ(rx1.size(), static_cast<std::size_t>(kCount));
  ASSERT_EQ(rx2.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(rx1[static_cast<std::size_t>(i)].msg.round, i);
    EXPECT_EQ(rx2[static_cast<std::size_t>(i)].msg.round, 100 + i);
  }
}

TEST(PerfectLink, ProtocolPayloadSurvivesTheLink) {
  LinkPair pair({});
  WireMessage wm;
  wm.kind = WireKind::kProtocol;
  wm.round = 5;
  wm.msg = make_heard({{1, 2}, {3, 4}}, {7, 7}, 1);
  pair.a.send(1, wm);
  pair.a.flush();

  std::vector<ReceivedMessage> rx_a, rx_b;
  for (int step = 0; step < 100 && rx_b.empty(); ++step) {
    pair.pump(rx_a, rx_b);
  }
  ASSERT_EQ(rx_b.size(), 1u);
  EXPECT_EQ(rx_b[0].msg, wm);
}

TEST(PerfectLink, AllAckedReflectsUnflushedMessages) {
  LinkPair pair({});
  EXPECT_TRUE(pair.a.all_acked());
  pair.a.send(1, tagged(0));
  EXPECT_FALSE(pair.a.all_acked());  // queued but not yet transmitted
  pair.a.flush();
  EXPECT_FALSE(pair.a.all_acked());  // transmitted but not yet acked
  std::vector<ReceivedMessage> rx_a, rx_b;
  for (int step = 0; step < 100 && !pair.a.all_acked(); ++step) {
    pair.pump(rx_a, rx_b);
  }
  EXPECT_TRUE(pair.a.all_acked());
}

TEST(UdpTransport, LoopbackRoundtripResolvesSenderIdentity) {
  UdpTransport t0(0), t1(0);  // ephemeral ports
  ASSERT_NE(t0.local_port(), 0);
  ASSERT_NE(t1.local_port(), 0);
  const std::vector<std::uint16_t> ports = {t0.local_port(), t1.local_port()};
  t0.set_peers(ports);
  t1.set_peers(ports);

  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  t0.send(1, payload);
  Datagram d;
  bool got = false;
  for (int i = 0; i < 2000 && !(got = t1.try_receive(d)); ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(got);
  EXPECT_EQ(d.from, 0u);  // resolved from the source port, not packet bytes
  EXPECT_EQ(d.bytes, payload);
  EXPECT_FALSE(t1.try_receive(d));
}

}  // namespace
}  // namespace rbcast
