#include "radiobcast/core/experiment.h"

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"

namespace rbcast {
namespace {

TEST(MakeFaults, NonePlacesNothing) {
  const Torus torus(20, 20);
  Rng rng(1);
  PlacementConfig placement;
  placement.kind = PlacementKind::kNone;
  EXPECT_TRUE(
      make_faults(placement, torus, 2, Metric::kLInf, 5, {0, 0}, rng).empty());
}

TEST(MakeFaults, DefaultStripPositionsAreTwoStrips) {
  const Torus torus(20, 20);
  Rng rng(1);
  PlacementConfig placement;
  placement.kind = PlacementKind::kFullStrip;
  placement.trim = false;
  const FaultSet f =
      make_faults(placement, torus, 2, Metric::kLInf, 10, {0, 0}, rng);
  // Strips of width r=2 at x=5 and x=15, full height.
  EXPECT_EQ(f.size(), 80u);
  EXPECT_TRUE(f.contains({5, 0}));
  EXPECT_TRUE(f.contains({6, 10}));
  EXPECT_TRUE(f.contains({15, 19}));
  EXPECT_FALSE(f.contains({10, 10}));
}

TEST(MakeFaults, CustomStripPositions) {
  const Torus torus(20, 20);
  Rng rng(1);
  PlacementConfig placement;
  placement.kind = PlacementKind::kFullStrip;
  placement.strip_positions = {2};
  placement.strip_width = 1;
  placement.trim = false;
  const FaultSet f =
      make_faults(placement, torus, 2, Metric::kLInf, 10, {0, 0}, rng);
  EXPECT_EQ(f.size(), 20u);
}

TEST(MakeFaults, TrimEnforcesBudget) {
  const Torus torus(20, 20);
  Rng rng(1);
  PlacementConfig placement;
  placement.kind = PlacementKind::kFullStrip;
  placement.trim = true;
  const std::int64_t t = 7;
  const FaultSet f =
      make_faults(placement, torus, 2, Metric::kLInf, t, {0, 0}, rng);
  EXPECT_LE(max_closed_nbd_faults(torus, f, 2, Metric::kLInf), t);
}

TEST(MakeFaults, CheckerboardIsLegalAtImpossibilityBudgetUntrimmed) {
  const Torus torus(20, 20);
  Rng rng(1);
  PlacementConfig placement;
  placement.kind = PlacementKind::kCheckerboardStrip;
  placement.trim = false;
  const FaultSet f = make_faults(placement, torus, 2, Metric::kLInf,
                                 byz_linf_impossible_min(2), {0, 0}, rng);
  EXPECT_EQ(max_closed_nbd_faults(torus, f, 2, Metric::kLInf),
            byz_linf_impossible_min(2));
}

TEST(MakeFaults, IidUsesProbability) {
  const Torus torus(20, 20);
  Rng rng(5);
  PlacementConfig placement;
  placement.kind = PlacementKind::kIid;
  placement.iid_p = 0.5;
  const FaultSet f =
      make_faults(placement, torus, 2, Metric::kLInf, 0, {0, 0}, rng);
  EXPECT_NEAR(static_cast<double>(f.size()), 200.0, 60.0);
}

TEST(MakeFaults, RandomBoundedHonorsTarget) {
  const Torus torus(20, 20);
  Rng rng(5);
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  placement.random_target = 7;
  const FaultSet f =
      make_faults(placement, torus, 2, Metric::kLInf, 24, {0, 0}, rng);
  EXPECT_EQ(f.size(), 7u);
}

TEST(RunRepeated, AggregatesAcrossSeeds) {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.t = 2;
  cfg.seed = 7;
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  placement.random_target = 5;
  const Aggregate agg = run_repeated(cfg, placement, 4);
  EXPECT_EQ(agg.runs, 4);
  EXPECT_GE(agg.successes, 0);
  EXPECT_LE(agg.successes, 4);
  EXPECT_GT(agg.mean_coverage(), 0.0);
  EXPECT_LE(agg.mean_coverage(), 1.0);
  EXPECT_LE(agg.min_coverage, agg.mean_coverage());
  EXPECT_EQ(agg.wrong_total, 0);
  EXPECT_NEAR(agg.mean_fault_count(), 5.0, 0.01);
  EXPECT_LE(agg.max_nbd_faults, 2);
  EXPECT_GT(agg.mean_transmissions(), 0.0);
}

TEST(RunRepeated, DeterministicForBaseSeed) {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.t = 1;
  cfg.seed = 99;
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  placement.random_target = 4;
  const Aggregate a = run_repeated(cfg, placement, 3);
  const Aggregate b = run_repeated(cfg, placement, 3);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.mean_coverage(), b.mean_coverage());
  EXPECT_DOUBLE_EQ(a.mean_transmissions(), b.mean_transmissions());
}

TEST(RunRepeated, AllSuccessHelper) {
  Aggregate agg;
  agg.runs = 3;
  agg.successes = 3;
  EXPECT_TRUE(agg.all_success());
  agg.successes = 2;
  EXPECT_FALSE(agg.all_success());
}

TEST(PlacementKindNames, ToString) {
  EXPECT_STREQ(to_string(PlacementKind::kNone), "none");
  EXPECT_STREQ(to_string(PlacementKind::kFullStrip), "full-strip");
  EXPECT_STREQ(to_string(PlacementKind::kPuncturedStrip), "punctured-strip");
  EXPECT_STREQ(to_string(PlacementKind::kCheckerboardStrip),
               "checkerboard-strip");
  EXPECT_STREQ(to_string(PlacementKind::kRandomBounded), "random-bounded");
  EXPECT_STREQ(to_string(PlacementKind::kIid), "iid");
}

TEST(PlacementKindNames, FromStringRoundTrip) {
  for (const PlacementKind k :
       {PlacementKind::kNone, PlacementKind::kFullStrip,
        PlacementKind::kPuncturedStrip, PlacementKind::kCheckerboardStrip,
        PlacementKind::kRandomBounded, PlacementKind::kIid}) {
    const auto parsed = placement_from_string(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(placement_from_string("no-such-placement").has_value());
  EXPECT_FALSE(placement_from_string("").has_value());
}

TEST(Aggregate, MergeOfSplitRunsEqualsUnsplitRunExactly) {
  // The merge-safety contract: because every accumulated quantity is an
  // integer sum (plus an associative min/max), splitting a repeated run at
  // any point and merging the partial aggregates reproduces the unsplit
  // aggregate bit for bit.
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.t = 2;
  cfg.seed = 321;
  PlacementConfig placement;
  placement.kind = PlacementKind::kIid;
  placement.iid_p = 0.3;

  const Aggregate whole = run_repeated(cfg, placement, 7);
  for (int split = 0; split <= 7; ++split) {
    Aggregate merged = run_repeated_range(cfg, placement, 0, split);
    merged.merge(run_repeated_range(cfg, placement, split, 7 - split));
    EXPECT_EQ(merged.runs, whole.runs) << "split=" << split;
    EXPECT_EQ(merged.successes, whole.successes) << "split=" << split;
    EXPECT_EQ(merged.correct_total, whole.correct_total) << "split=" << split;
    EXPECT_EQ(merged.honest_total, whole.honest_total) << "split=" << split;
    EXPECT_EQ(merged.wrong_total, whole.wrong_total) << "split=" << split;
    EXPECT_EQ(merged.rounds_total, whole.rounds_total) << "split=" << split;
    EXPECT_EQ(merged.transmissions_total, whole.transmissions_total)
        << "split=" << split;
    EXPECT_EQ(merged.fault_total, whole.fault_total) << "split=" << split;
    EXPECT_EQ(merged.max_nbd_faults, whole.max_nbd_faults)
        << "split=" << split;
    // Doubles too, and exactly: min is associative, the means are derived
    // from the integer sums.
    EXPECT_EQ(merged.min_coverage, whole.min_coverage) << "split=" << split;
    EXPECT_EQ(merged.mean_coverage(), whole.mean_coverage())
        << "split=" << split;
    EXPECT_EQ(merged.mean_rounds(), whole.mean_rounds()) << "split=" << split;
  }
}

TEST(Aggregate, MergeIsAssociative) {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.t = 2;
  cfg.seed = 55;
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  placement.random_target = 4;
  const Aggregate a = run_repeated_range(cfg, placement, 0, 2);
  const Aggregate b = run_repeated_range(cfg, placement, 2, 3);
  const Aggregate c = run_repeated_range(cfg, placement, 5, 2);
  Aggregate ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  Aggregate bc = b;
  bc.merge(c);
  Aggregate a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.correct_total, a_bc.correct_total);
  EXPECT_EQ(ab_c.transmissions_total, a_bc.transmissions_total);
  EXPECT_EQ(ab_c.mean_coverage(), a_bc.mean_coverage());
  EXPECT_EQ(ab_c.min_coverage, a_bc.min_coverage);
  EXPECT_EQ(ab_c.runs, a_bc.runs);
}

}  // namespace
}  // namespace rbcast
