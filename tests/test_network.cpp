#include "radiobcast/net/network.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace rbcast {
namespace {

/// Records everything it hears; optionally broadcasts scripted messages at
/// start.
class Recorder : public NodeBehavior {
 public:
  explicit Recorder(std::vector<Message> at_start = {})
      : at_start_(std::move(at_start)) {}

  void on_start(NodeContext& ctx) override {
    for (const Message& m : at_start_) ctx.broadcast(m);
  }

  void on_receive(NodeContext&, const Envelope& env) override {
    received.push_back(env);
  }

  void on_round_end(NodeContext&) override { rounds_seen += 1; }

  std::vector<Envelope> received;
  int rounds_seen = 0;

 private:
  std::vector<Message> at_start_;
};

/// Re-broadcasts the first received message once (to test multi-round flow).
class RelayOnce : public NodeBehavior {
 public:
  void on_receive(NodeContext& ctx, const Envelope& env) override {
    if (relayed_) return;
    relayed_ = true;
    ctx.broadcast(env.msg);
  }

 private:
  bool relayed_ = false;
};

RadioNetwork make_net(std::int32_t side, std::int32_t r) {
  return RadioNetwork(Torus(side, side), r, Metric::kLInf, /*seed=*/1);
}

TEST(Network, RequiresBehaviorsEverywhere) {
  auto net = make_net(6, 1);
  EXPECT_THROW(net.start(), std::logic_error);
}

TEST(Network, StartTwiceThrows) {
  auto net = make_net(6, 1);
  for (const Coord c : net.torus().all_coords()) {
    net.set_behavior(c, std::make_unique<Recorder>());
  }
  net.start();
  EXPECT_THROW(net.start(), std::logic_error);
}

TEST(Network, RunRoundBeforeStartThrows) {
  auto net = make_net(6, 1);
  EXPECT_THROW(net.run_round(), std::logic_error);
}

TEST(Network, BroadcastReachesExactlyTheNeighborhood) {
  auto net = make_net(8, 2);
  const Coord sender{4, 4};
  for (const Coord c : net.torus().all_coords()) {
    if (c == sender) {
      net.set_behavior(
          c, std::make_unique<Recorder>(
                 std::vector<Message>{make_committed(sender, 1)}));
    } else {
      net.set_behavior(c, std::make_unique<Recorder>());
    }
  }
  net.start();
  net.run_round();
  int heard = 0;
  for (const Coord c : net.torus().all_coords()) {
    const auto* rec = dynamic_cast<const Recorder*>(net.behavior(c));
    ASSERT_NE(rec, nullptr);
    if (c == sender) {
      EXPECT_TRUE(rec->received.empty());  // no self-delivery
      continue;
    }
    if (net.torus().within(sender, c, 2, Metric::kLInf)) {
      ASSERT_EQ(rec->received.size(), 1u) << to_string(c);
      EXPECT_EQ(rec->received[0].sender, sender);
      EXPECT_EQ(rec->received[0].msg.value, 1);
      ++heard;
    } else {
      EXPECT_TRUE(rec->received.empty()) << to_string(c);
    }
  }
  EXPECT_EQ(heard, 24);
}

TEST(Network, SenderIdentityIsTrueTransmitter) {
  // Even if the message claims another origin, Envelope::sender is the
  // transmitter (no spoofing).
  auto net = make_net(8, 1);
  const Coord liar{3, 3};
  for (const Coord c : net.torus().all_coords()) {
    if (c == liar) {
      net.set_behavior(c, std::make_unique<Recorder>(std::vector<Message>{
                              make_committed({0, 0}, 1)}));
    } else {
      net.set_behavior(c, std::make_unique<Recorder>());
    }
  }
  net.start();
  net.run_round();
  const auto* rec = dynamic_cast<const Recorder*>(net.behavior({3, 4}));
  ASSERT_EQ(rec->received.size(), 1u);
  EXPECT_EQ(rec->received[0].sender, liar);
  EXPECT_EQ(rec->received[0].msg.origin, (Coord{0, 0}));
}

TEST(Network, PerSenderFifoOrderPreserved) {
  auto net = make_net(8, 1);
  const Coord sender{2, 2};
  std::vector<Message> msgs;
  for (std::uint8_t i = 0; i < 2; ++i) msgs.push_back(make_committed(sender, i));
  for (const Coord c : net.torus().all_coords()) {
    net.set_behavior(c, std::make_unique<Recorder>(
                            c == sender ? msgs : std::vector<Message>{}));
  }
  net.start();
  net.run_round();
  const auto* rec = dynamic_cast<const Recorder*>(net.behavior({3, 3}));
  ASSERT_EQ(rec->received.size(), 2u);
  EXPECT_EQ(rec->received[0].msg.value, 0);
  EXPECT_EQ(rec->received[1].msg.value, 1);
}

TEST(Network, AllReceiversSeeSameOrderAcrossSenders) {
  auto net = make_net(8, 2);
  const Coord s1{3, 3}, s2{4, 4};
  for (const Coord c : net.torus().all_coords()) {
    std::vector<Message> at_start;
    if (c == s1) at_start.push_back(make_committed(s1, 0));
    if (c == s2) at_start.push_back(make_committed(s2, 1));
    net.set_behavior(c, std::make_unique<Recorder>(at_start));
  }
  net.start();
  net.run_round();
  // Two receivers that hear both senders must agree on the order.
  std::vector<Coord> both;
  for (const Coord c : net.torus().all_coords()) {
    if (c != s1 && c != s2 && net.torus().within(c, s1, 2, Metric::kLInf) &&
        net.torus().within(c, s2, 2, Metric::kLInf)) {
      both.push_back(c);
    }
  }
  ASSERT_GE(both.size(), 2u);
  std::vector<Coord> first_order;
  for (const Coord c : both) {
    const auto* rec = dynamic_cast<const Recorder*>(net.behavior(c));
    ASSERT_EQ(rec->received.size(), 2u);
    std::vector<Coord> order{rec->received[0].sender, rec->received[1].sender};
    if (first_order.empty()) {
      first_order = order;
    } else {
      EXPECT_EQ(order, first_order);
    }
  }
}

TEST(Network, MessagesSentDuringReceiveArriveNextRound) {
  auto net = make_net(10, 1);
  const Coord origin{5, 5};
  for (const Coord c : net.torus().all_coords()) {
    if (c == origin) {
      net.set_behavior(c, std::make_unique<Recorder>(std::vector<Message>{
                              make_committed(origin, 1)}));
    } else {
      net.set_behavior(c, std::make_unique<RelayOnce>());
    }
  }
  net.start();
  net.run_round();  // round 1: neighbors hear the origin
  // A node 2 hops away has heard nothing yet; its neighbor relayed during
  // round 1, delivery happens in round 2.
  net.set_behavior({5, 8}, std::make_unique<Recorder>());  // 3 hops away
  net.run_round();
  net.run_round();
  const auto* rec = dynamic_cast<const Recorder*>(net.behavior({5, 8}));
  EXPECT_FALSE(rec->received.empty());
}

TEST(Network, QuiescenceAfterFiniteProtocol) {
  auto net = make_net(8, 1);
  const Coord origin{4, 4};
  for (const Coord c : net.torus().all_coords()) {
    if (c == origin) {
      net.set_behavior(c, std::make_unique<Recorder>(std::vector<Message>{
                              make_committed(origin, 1)}));
    } else {
      net.set_behavior(c, std::make_unique<RelayOnce>());
    }
  }
  net.start();
  EXPECT_FALSE(net.quiescent());
  const auto rounds = net.run_until_quiescent(100);
  EXPECT_TRUE(net.quiescent());
  EXPECT_GT(rounds, 2);
  EXPECT_LT(rounds, 100);
}

TEST(Network, StatsCountTransmissionsAndDeliveries) {
  auto net = make_net(8, 1);
  const Coord origin{4, 4};
  for (const Coord c : net.torus().all_coords()) {
    if (c == origin) {
      net.set_behavior(c, std::make_unique<Recorder>(std::vector<Message>{
                              make_committed(origin, 1)}));
    } else {
      net.set_behavior(c, std::make_unique<Recorder>());
    }
  }
  net.start();
  net.run_round();
  EXPECT_EQ(net.stats().transmissions, 1u);
  EXPECT_EQ(net.stats().deliveries, 8u);
  EXPECT_EQ(net.transmissions_of(origin), 1u);
  EXPECT_EQ(net.transmissions_of({0, 0}), 0u);
}

TEST(Network, RoundCounterAdvances) {
  auto net = make_net(6, 1);
  for (const Coord c : net.torus().all_coords()) {
    net.set_behavior(c, std::make_unique<Recorder>());
  }
  net.start();
  EXPECT_EQ(net.round(), 0);
  net.run_round();
  net.run_round();
  EXPECT_EQ(net.round(), 2);
}

TEST(Network, OnRoundEndCalledForEveryNode) {
  auto net = make_net(6, 1);
  for (const Coord c : net.torus().all_coords()) {
    net.set_behavior(c, std::make_unique<Recorder>());
  }
  net.start();
  net.run_round();
  net.run_round();
  for (const Coord c : net.torus().all_coords()) {
    EXPECT_EQ(dynamic_cast<const Recorder*>(net.behavior(c))->rounds_seen, 2);
  }
}

TEST(Network, RejectsRadiusBelowOne) {
  EXPECT_THROW(RadioNetwork(Torus(6, 6), 0, Metric::kLInf, 1),
               std::logic_error);
}

}  // namespace
}  // namespace rbcast
