// RoundSynchronizer tests: barrier completion logic, TDMA-order release,
// timeout behavior (runtime/round_sync.h), plus an end-to-end slow-node
// progress test — correct nodes must outrun a process that stops
// participating, opening their barriers by timeout instead of wedging.

#include "radiobcast/runtime/round_sync.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "radiobcast/net/message.h"
#include "radiobcast/runtime/harness.h"

namespace rbcast {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

WireMessage protocol_msg(Coord origin, std::int64_t round) {
  WireMessage wm;
  wm.kind = WireKind::kProtocol;
  wm.round = round;
  wm.msg = make_committed(origin, 1);
  return wm;
}

WireMessage marker(std::int64_t round, std::uint32_t done_count) {
  WireMessage wm;
  wm.kind = WireKind::kRoundDone;
  wm.round = round;
  wm.done_count = done_count;
  return wm;
}

TEST(RoundSynchronizer, CompleteOnlyWhenEveryMarkerIsIn) {
  RoundSynchronizer sync({1, 2}, {});
  EXPECT_FALSE(sync.complete(0));

  sync.on_message(1, protocol_msg({1, 0}, 0));
  sync.on_message(1, marker(0, 1));
  EXPECT_FALSE(sync.complete(0));  // peer 2 still missing

  sync.on_message(2, marker(0, 0));
  EXPECT_TRUE(sync.complete(0));

  const std::vector<RoundMessage> out = sync.take(0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sender, 1u);
  EXPECT_EQ(out[0].msg.origin, (Coord{1, 0}));
  EXPECT_EQ(sync.timeouts(), 0u);
}

TEST(RoundSynchronizer, MarkerAloneIsNotEnough) {
  // A marker claiming 2 messages gates the barrier until both arrived (this
  // can only happen transiently if the link reordered, which it never does —
  // but the synchronizer must not trust the count on faith).
  RoundSynchronizer sync({1}, {});
  sync.on_message(1, marker(0, 2));
  EXPECT_FALSE(sync.complete(0));
  sync.on_message(1, protocol_msg({1, 0}, 0));
  EXPECT_FALSE(sync.complete(0));
  sync.on_message(1, protocol_msg({1, 1}, 0));
  EXPECT_TRUE(sync.complete(0));
}

TEST(RoundSynchronizer, TakeReleasesTdmaOrder) {
  // Sender index ascending, per-sender FIFO: exactly the simulator's
  // delivery order.
  RoundSynchronizer sync({2, 5}, {});
  sync.on_message(5, protocol_msg({5, 0}, 0));
  sync.on_message(5, protocol_msg({5, 1}, 0));
  sync.on_message(5, marker(0, 2));
  sync.on_message(2, protocol_msg({2, 0}, 0));
  sync.on_message(2, marker(0, 1));
  ASSERT_TRUE(sync.complete(0));

  const std::vector<RoundMessage> out = sync.take(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].sender, 2u);
  EXPECT_EQ(out[1].sender, 5u);
  EXPECT_EQ(out[1].msg.origin, (Coord{5, 0}));
  EXPECT_EQ(out[2].sender, 5u);
  EXPECT_EQ(out[2].msg.origin, (Coord{5, 1}));

  // take() drops the round's bookkeeping.
  EXPECT_FALSE(sync.complete(0));
}

TEST(RoundSynchronizer, RoundsAreKeptSeparate) {
  RoundSynchronizer sync({1}, {});
  sync.on_message(1, protocol_msg({1, 0}, 0));
  sync.on_message(1, marker(0, 1));
  sync.on_message(1, protocol_msg({1, 9}, 1));
  sync.on_message(1, marker(1, 1));
  ASSERT_TRUE(sync.complete(0));
  ASSERT_TRUE(sync.complete(1));
  EXPECT_EQ(sync.take(0)[0].msg.origin, (Coord{1, 0}));
  EXPECT_EQ(sync.take(1)[0].msg.origin, (Coord{1, 9}));
}

TEST(RoundSynchronizer, NoExpectedPeersIsTriviallyComplete) {
  RoundSynchronizer sync({}, {});
  EXPECT_TRUE(sync.complete(0));
  EXPECT_TRUE(sync.take(0).empty());
}

TEST(RoundSynchronizer, ZeroTimeoutWaitsForever) {
  RoundSynchronizer sync({1}, {});
  const auto t0 = steady_clock::now();
  sync.begin_round(0, t0);
  EXPECT_FALSE(sync.timed_out(0, t0 + std::chrono::hours(24)));
}

TEST(RoundSynchronizer, TimeoutOpensBarrierAndReleasesOnlyCoveredTraffic) {
  RoundSynchronizer::Options opts;
  opts.timeout = milliseconds(10);
  RoundSynchronizer sync({1, 2}, opts);
  const auto t0 = steady_clock::now();
  sync.begin_round(0, t0);
  EXPECT_FALSE(sync.timed_out(0, t0 + milliseconds(5)));
  EXPECT_TRUE(sync.timed_out(0, t0 + milliseconds(11)));

  // Peer 1 finished its round; peer 2 sent a message but never its marker.
  // Only marker-covered traffic is released: peer 2's stray message must not
  // straddle the opened barrier (it would be delivered in the wrong round).
  sync.on_message(1, protocol_msg({1, 0}, 0));
  sync.on_message(1, marker(0, 1));
  sync.on_message(2, protocol_msg({2, 0}, 0));
  ASSERT_FALSE(sync.complete(0));

  const std::vector<RoundMessage> out = sync.take(0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sender, 1u);
  EXPECT_EQ(sync.timeouts(), 1u);
}

TEST(RoundSynchronizer, TimeoutDoublesBackoffAndCompleteRoundResetsIt) {
  RoundSynchronizer::Options opts;
  opts.timeout = milliseconds(10);
  opts.max_backoff = 4;
  RoundSynchronizer sync({1}, opts);
  EXPECT_EQ(sync.backoff(), 1);

  const auto t0 = steady_clock::now();
  sync.begin_round(0, t0);
  EXPECT_TRUE(sync.timed_out(0, t0 + milliseconds(11)));
  (void)sync.take(0);  // timeout-open: backoff doubles
  EXPECT_EQ(sync.backoff(), 2);

  // With the doubled multiplier the next round tolerates 2x the base wait.
  sync.begin_round(1, t0);
  EXPECT_FALSE(sync.timed_out(1, t0 + milliseconds(11)));
  EXPECT_TRUE(sync.timed_out(1, t0 + milliseconds(21)));
  (void)sync.take(1);
  (void)sync.take(2);  // another timeout-open (round clock never started)
  EXPECT_EQ(sync.backoff(), 4);
  (void)sync.take(3);
  EXPECT_EQ(sync.backoff(), 4);  // capped at max_backoff

  // A fully complete round resets the multiplier.
  sync.on_message(1, marker(4, 0));
  ASSERT_TRUE(sync.complete(4));
  (void)sync.take(4);
  EXPECT_EQ(sync.backoff(), 1);
}

TEST(RoundSynchronizer, DeadlineTracksBackoffAndVanishesWithoutAClock) {
  RoundSynchronizer::Options opts;
  opts.timeout = milliseconds(10);
  RoundSynchronizer sync({1}, opts);

  // No round clock running yet: nothing to wait for.
  EXPECT_FALSE(sync.deadline(0).has_value());

  const auto t0 = steady_clock::now();
  sync.begin_round(0, t0);
  ASSERT_TRUE(sync.deadline(0).has_value());
  EXPECT_EQ(*sync.deadline(0), t0 + milliseconds(10));
  // The deadline and timed_out agree to the tick: this is what lets the
  // epoll loop sleep exactly until the barrier would open.
  EXPECT_FALSE(sync.timed_out(0, *sync.deadline(0) - milliseconds(1)));
  EXPECT_TRUE(sync.timed_out(0, *sync.deadline(0) + milliseconds(1)));

  // A timeout-opened barrier doubles the backoff; the next round's deadline
  // stretches with it.
  ASSERT_TRUE(sync.timed_out(0, t0 + milliseconds(11)));
  (void)sync.take(0);
  sync.begin_round(1, t0);
  ASSERT_TRUE(sync.deadline(1).has_value());
  EXPECT_EQ(*sync.deadline(1), t0 + milliseconds(20));

  // A zero timeout means wait forever — no deadline to report.
  RoundSynchronizer forever({1}, {});
  forever.begin_round(0, t0);
  EXPECT_FALSE(forever.deadline(0).has_value());
}

TEST(RoundSynchronizer, SuspectsPersistentlySilentPeerAndStopsGatingOnIt) {
  RoundSynchronizer::Options opts;
  opts.timeout = milliseconds(10);
  opts.suspect_after = 2;
  RoundSynchronizer sync({1, 2}, opts);

  // Peer 2 participates; peer 1 is silent for two consecutive timeout-opened
  // rounds -> suspected.
  sync.on_message(2, marker(0, 0));
  EXPECT_FALSE(sync.complete(0));
  (void)sync.take(0);
  EXPECT_FALSE(sync.is_suspected(1));
  sync.on_message(2, marker(1, 0));
  (void)sync.take(1);
  EXPECT_TRUE(sync.is_suspected(1));
  EXPECT_EQ(sync.suspected_count(), 1u);
  EXPECT_EQ(sync.suspect_transitions(), 1u);
  EXPECT_EQ(sync.degraded_rounds(), 2u);

  // A suspected peer no longer gates the barrier...
  sync.on_message(2, marker(2, 0));
  EXPECT_TRUE(sync.complete(2));
  // ...but such rounds still count as degraded: traffic may be missing.
  (void)sync.take(2);
  EXPECT_EQ(sync.degraded_rounds(), 3u);

  // A marker from the suspected peer clears the suspicion immediately — the
  // restarted-process rejoin path.
  sync.on_message(1, marker(3, 0));
  EXPECT_FALSE(sync.is_suspected(1));
  sync.on_message(2, marker(3, 0));
  EXPECT_TRUE(sync.complete(3));
  (void)sync.take(3);
  EXPECT_EQ(sync.degraded_rounds(), 3u);  // fully complete — not degraded
  EXPECT_EQ(sync.suspect_transitions(), 1u);
}

TEST(RoundSynchronizer, ParticipationResetsTheMissStreak) {
  RoundSynchronizer::Options opts;
  opts.timeout = milliseconds(10);
  opts.suspect_after = 2;
  RoundSynchronizer sync({1}, opts);

  (void)sync.take(0);  // miss 1
  sync.on_message(1, marker(1, 0));
  ASSERT_TRUE(sync.complete(1));
  (void)sync.take(1);  // present — streak resets
  (void)sync.take(2);  // miss 1 again, not 2
  EXPECT_FALSE(sync.is_suspected(1));
  (void)sync.take(3);  // miss 2 -> suspected
  EXPECT_TRUE(sync.is_suspected(1));
}

// End-to-end slow-node progress over real loopback sockets: one node exits
// after round 1 and never sends markers again. With a finite round timeout
// every other node must still run the full horizon and commit; only the
// early-exiting node stays undecided.
TEST(RoundSynchronizerProgress, CorrectNodesOutrunAWedgedNode) {
  Scenario scenario;
  scenario.sim.width = 6;
  scenario.sim.height = 6;
  scenario.sim.r = 1;
  scenario.sim.metric = Metric::kLInf;
  scenario.sim.t = 0;
  scenario.sim.protocol = ProtocolKind::kCrashFlood;
  scenario.sim.adversary = AdversaryKind::kSilent;
  scenario.sim.value = 1;
  scenario.sim.source = {0, 0};
  scenario.sim.seed = 42;
  scenario.sim.max_rounds = 12;
  // 100ms is ~4 orders of magnitude above loopback latency: a loaded CI
  // machine cannot fire this timeout spuriously, while suspicion
  // (suspect_after = 2) stops the quitter's neighbors from paying the
  // timeout more than twice each.
  scenario.round_timeout_ms = 100;
  scenario.linger_timeout_ms = 200;
  // The wait-driven backend is the interesting one here: a wedged peer must
  // wake its neighbors by deadline, not by a polling sleep.
  scenario.backend = RuntimeBackend::kEpoll;

  const Coord quitter{3, 3};  // max distance from the source, honest
  const RuntimeResult result = run_scenario_threads(
      scenario, [&](RuntimeNode::Options& opts) {
        if (opts.self == quitter) opts.max_rounds = 1;
      });

  // 36 nodes: 1 source + 35 honest, no faults. Everyone but the quitter
  // commits (the flood routes around it); nobody wedges on its silence.
  EXPECT_EQ(result.honest_nodes, 35);
  EXPECT_EQ(result.wrong_commits, 0);
  EXPECT_EQ(result.undecided, 1);
  EXPECT_EQ(result.correct_commits, 34);
  EXPECT_EQ(result.rounds, 12);
  // The quitter's neighbors opened barriers by timeout, and that is the only
  // reason the run completed.
  EXPECT_GT(result.counters.barrier_timeouts, 0u);
  EXPECT_FALSE(result.any_interrupted);

  const Torus torus(6, 6);
  const RuntimeVerdict& v =
      result.verdicts[static_cast<std::size_t>(torus.index(quitter))];
  EXPECT_FALSE(v.committed.has_value());
  EXPECT_EQ(v.rounds, 1);
}

}  // namespace
}  // namespace rbcast
