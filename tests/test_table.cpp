#include "radiobcast/util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rbcast {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "count"});
  t.row().cell("alpha").cell(3);
  t.row().cell("beta").cell(42);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumericCellsRightAligned) {
  Table t({"v"});
  t.row().cell("wide-header-ish");
  t.row().cell(7);
  std::ostringstream os;
  t.print(os);
  // The numeric row should be padded on the left: "|    ...7 |".
  const std::string s = os.str();
  EXPECT_NE(s.find("7 |"), std::string::npos);
}

TEST(Table, BoolCells) {
  Table t({"ok"});
  t.row().cell(true);
  t.row().cell(false);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("yes"), std::string::npos);
  EXPECT_NE(os.str().find("no"), std::string::npos);
}

TEST(Table, DoubleFormattingTrimsZeros) {
  EXPECT_EQ(format_double(1.5, 3), "1.5");
  EXPECT_EQ(format_double(2.0, 3), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(0.1255, 2), "0.13");
  EXPECT_EQ(format_double(-3.25, 2), "-3.25");
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("x,y").cell(1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",1\n");
}

TEST(Table, CsvEscapesQuotes) {
  Table t({"a"});
  t.row().cell("say \"hi\"");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, CellBeforeRowStartsARow) {
  Table t({"a"});
  t.cell("implicit");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, MixedWidthColumnsAlign) {
  Table t({"x", "yyyyyyyy"});
  t.row().cell(123456789).cell("s");
  std::ostringstream os;
  t.print(os);
  // Each line should have the same length.
  std::istringstream is(os.str());
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

}  // namespace
}  // namespace rbcast
