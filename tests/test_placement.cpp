#include "radiobcast/fault/placement.h"

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"

namespace rbcast {
namespace {

constexpr Coord kSource{0, 0};

TEST(Placement, FullStripCoversAllRows) {
  const Torus torus(20, 20);
  const FaultSet f = full_strip(torus, 8, 2, kSource);
  EXPECT_EQ(f.size(), 40u);
  EXPECT_TRUE(f.contains({8, 0}));
  EXPECT_TRUE(f.contains({9, 19}));
  EXPECT_FALSE(f.contains({10, 0}));
}

TEST(Placement, FullStripExcludesSource) {
  const Torus torus(20, 20);
  const FaultSet f = full_strip(torus, 0, 2, kSource);
  EXPECT_FALSE(f.contains({0, 0}));
  EXPECT_EQ(f.size(), 39u);
}

TEST(Placement, FullStripWorstNeighborhoodIsExactlyTheorem4) {
  for (std::int32_t r = 1; r <= 3; ++r) {
    const Torus torus(8 * r + 4, 8 * r + 4);
    const FaultSet f = full_strip(torus, 4 * r, r, kSource);
    EXPECT_EQ(max_closed_nbd_faults(torus, f, r, Metric::kLInf),
              r_2r_plus_1(r))
        << "r=" << r;
  }
}

TEST(Placement, PuncturedStripSatisfiesBoundJustBelowTheorem4) {
  for (std::int32_t r = 1; r <= 3; ++r) {
    const Torus torus(8 * r + 4, (2 * r + 1) * 4);  // height multiple of period
    const FaultSet f =
        punctured_strip(torus, 4 * r, r, 2 * r + 1, kSource);
    EXPECT_EQ(max_closed_nbd_faults(torus, f, r, Metric::kLInf),
              r_2r_plus_1(r) - 1)
        << "r=" << r;
  }
}

TEST(Placement, PuncturedStripRemovesExpectedNodes) {
  const Torus torus(20, 20);
  const FaultSet f = punctured_strip(torus, 8, 2, 5, kSource);
  EXPECT_FALSE(f.contains({8, 0}));
  EXPECT_FALSE(f.contains({8, 5}));
  EXPECT_TRUE(f.contains({8, 1}));
  EXPECT_TRUE(f.contains({9, 0}));  // punctures only the first column
}

TEST(Placement, CheckerboardStripIsHalfDensity) {
  const Torus torus(20, 20);
  const FaultSet f = checkerboard_strip(torus, 8, 2, 0, kSource);
  EXPECT_EQ(f.size(), 20u);  // half of 40
  for (const Coord c : f.sorted()) {
    EXPECT_EQ((c.x + c.y) % 2, 0);
    EXPECT_GE(c.x, 8);
    EXPECT_LE(c.x, 9);
  }
}

TEST(Placement, CheckerboardWorstNeighborhoodIsKooImpossibilityBudget) {
  // The paper's Fig 13 arrangement: the worst closed neighborhood of a
  // half-density width-r strip holds exactly ceil(r(2r+1)/2) faults — the
  // Byzantine impossibility budget.
  for (std::int32_t r = 1; r <= 4; ++r) {
    const Torus torus(8 * r + 4, 8 * r + 4);
    const FaultSet f = checkerboard_strip(torus, 4 * r, r, 0, kSource);
    EXPECT_EQ(max_closed_nbd_faults(torus, f, r, Metric::kLInf),
              byz_linf_impossible_min(r))
        << "r=" << r;
  }
}

TEST(Placement, StripWidthValidation) {
  const Torus torus(10, 10);
  EXPECT_THROW(full_strip(torus, 0, 0, kSource), std::invalid_argument);
  EXPECT_THROW(full_strip(torus, 0, 10, kSource), std::invalid_argument);
  EXPECT_THROW(punctured_strip(torus, 0, 2, 0, kSource),
               std::invalid_argument);
}

TEST(Placement, StripWrapsAcrossSeam) {
  const Torus torus(10, 10);
  const FaultSet f = full_strip(torus, 9, 2, kSource);  // columns 9 and 0
  EXPECT_TRUE(f.contains({9, 5}));
  EXPECT_TRUE(f.contains({0, 5}));
  EXPECT_FALSE(f.contains({0, 0}));  // the source
}

TEST(Placement, RandomBoundedRespectsBound) {
  const Torus torus(20, 20);
  Rng rng(7);
  const std::int64_t t = 5;
  const FaultSet f = random_bounded(torus, 2, Metric::kLInf, t,
                                    /*target=*/400, /*attempts=*/8000, rng,
                                    kSource);
  EXPECT_GT(f.size(), 0u);
  EXPECT_LE(max_closed_nbd_faults(torus, f, 2, Metric::kLInf), t);
  EXPECT_FALSE(f.contains(kSource));
}

TEST(Placement, RandomBoundedHitsSmallTarget) {
  const Torus torus(20, 20);
  Rng rng(7);
  const FaultSet f = random_bounded(torus, 2, Metric::kLInf, 24,
                                    /*target=*/10, /*attempts=*/8000, rng,
                                    kSource);
  EXPECT_EQ(f.size(), 10u);
}

TEST(Placement, RandomBoundedZeroBudgetPlacesNothing) {
  const Torus torus(20, 20);
  Rng rng(7);
  const FaultSet f = random_bounded(torus, 2, Metric::kLInf, 0,
                                    /*target=*/10, /*attempts=*/1000, rng,
                                    kSource);
  EXPECT_TRUE(f.empty());
}

TEST(Placement, RandomBoundedIsDeterministicPerSeed) {
  const Torus torus(16, 16);
  Rng a(42), b(42), c(43);
  const auto fa = random_bounded(torus, 2, Metric::kLInf, 4, 50, 2000, a,
                                 kSource);
  const auto fb = random_bounded(torus, 2, Metric::kLInf, 4, 50, 2000, b,
                                 kSource);
  const auto fc = random_bounded(torus, 2, Metric::kLInf, 4, 50, 2000, c,
                                 kSource);
  EXPECT_EQ(fa.sorted(), fb.sorted());
  EXPECT_NE(fa.sorted(), fc.sorted());
}

TEST(Placement, IidMatchesProbabilityRoughly) {
  const Torus torus(40, 40);
  Rng rng(11);
  const FaultSet f = iid_faults(torus, 0.25, rng, kSource);
  EXPECT_NEAR(static_cast<double>(f.size()) / 1599.0, 0.25, 0.05);
  EXPECT_FALSE(f.contains(kSource));
}

TEST(Placement, IidExtremes) {
  const Torus torus(10, 10);
  Rng rng(3);
  EXPECT_TRUE(iid_faults(torus, 0.0, rng, kSource).empty());
  EXPECT_EQ(iid_faults(torus, 1.0, rng, kSource).size(), 99u);
}

TEST(Placement, TrimToBudgetRepairsOverBudgetPatterns) {
  const std::int32_t r = 2;
  const Torus torus(20, 20);
  FaultSet f = full_strip(torus, 8, r, kSource);  // worst nbd = r(2r+1) = 10
  trim_to_budget(f, torus, r, Metric::kLInf, 7);
  EXPECT_LE(max_closed_nbd_faults(torus, f, r, Metric::kLInf), 7);
  EXPECT_GT(f.size(), 0u);
}

TEST(Placement, TrimToBudgetNoopWhenAlreadyLegal) {
  const Torus torus(20, 20);
  FaultSet f(torus, {{5, 5}, {15, 15}});
  trim_to_budget(f, torus, 2, Metric::kLInf, 1);
  EXPECT_EQ(f.size(), 2u);
}

TEST(Placement, TrimToBudgetZeroRemovesEverything) {
  const Torus torus(16, 16);
  FaultSet f(torus, {{5, 5}, {6, 6}});
  trim_to_budget(f, torus, 2, Metric::kLInf, 0);
  EXPECT_TRUE(f.empty());
}

}  // namespace
}  // namespace rbcast
