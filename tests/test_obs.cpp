// Observability-layer tests: counter semantics at the network's
// queue/deliver/drop/commit points, the ring-buffer trace sink (wrap-around,
// JSONL rendering, determinism), the no-allocation contract of the sink, and
// the per-trial phase timers.

#include "radiobcast/obs/counters.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>

#include "radiobcast/core/simulation.h"
#include "radiobcast/net/network.h"
#include "radiobcast/obs/timers.h"
#include "radiobcast/obs/trace.h"
#include "radiobcast/protocols/crash_flood.h"
#include "radiobcast/protocols/source.h"

// Global allocation counter: every operator new in this binary bumps it.
// Used to pin the "record() never allocates" contract of RoundTrace.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rbcast {
namespace {

SimConfig crash_flood_cfg() {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.adversary = AdversaryKind::kSilent;
  return cfg;
}

TEST(Counters, CrashFloodFaultFreeSemantics) {
  const SimConfig cfg = crash_flood_cfg();
  const SimResult res = run_simulation(cfg, FaultSet{});
  const Counters& c = res.counters;

  const std::uint64_t nodes = 12 * 12;
  // Every node (source included) broadcasts COMMITTED exactly once.
  EXPECT_EQ(c.broadcasts_queued, nodes);
  EXPECT_EQ(c.committed_queued, nodes);
  EXPECT_EQ(c.heard_queued, 0u);
  EXPECT_EQ(c.spoofed_sends, 0u);
  EXPECT_EQ(c.retransmission_copies, 0u);
  // Perfect channel: nothing dropped; every transmission reaches the full
  // L-inf r=1 neighborhood of 8 nodes.
  EXPECT_EQ(c.envelopes_dropped, 0u);
  EXPECT_EQ(c.envelopes_delivered, res.deliveries);
  EXPECT_EQ(c.envelopes_delivered, nodes * 8);
  // Every node commits exactly once (source included).
  EXPECT_EQ(c.commits, nodes);
  // last_commit_round matches the per-node commit-round vector's maximum.
  std::int64_t max_round = 0;
  for (const std::int64_t r : res.commit_rounds) {
    max_round = std::max(max_round, r);
  }
  EXPECT_EQ(c.last_commit_round, max_round);
  EXPECT_GT(c.last_commit_round, 0);
}

TEST(Counters, RetransmissionCopiesCounted) {
  SimConfig cfg = crash_flood_cfg();
  cfg.retransmissions = 3;
  const SimResult res = run_simulation(cfg, FaultSet{});
  const Counters& c = res.counters;
  EXPECT_EQ(c.retransmission_copies, c.broadcasts_queued * 2);
  // The repeats are real transmissions: the network transmits every queued
  // broadcast three times.
  EXPECT_EQ(res.transmissions, c.broadcasts_queued * 3);
}

TEST(Counters, LossyChannelSplitsDeliveredAndDropped) {
  SimConfig cfg = crash_flood_cfg();
  cfg.loss_p = 0.3;
  cfg.retransmissions = 2;  // keep liveness likely despite the loss
  const SimResult res = run_simulation(cfg, FaultSet{});
  const Counters& c = res.counters;
  EXPECT_GT(c.envelopes_dropped, 0u);
  EXPECT_GT(c.envelopes_delivered, 0u);
  // Delivered + dropped covers every (transmission, receiver) pair: r=1 L-inf
  // neighborhoods have 8 receivers.
  EXPECT_EQ(c.envelopes_delivered + c.envelopes_dropped,
            res.transmissions * 8);
}

TEST(Counters, HeardTrafficAndSpoofedSends) {
  // bv-2hop generates HEARD relays; the spoofing adversary triggers the
  // spoofed-send counter.
  SimConfig cfg;
  cfg.width = cfg.height = 20;
  cfg.r = 2;
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.adversary = AdversaryKind::kSpoofing;
  cfg.t = 1;
  FaultSet faults;
  const Torus torus(cfg.width, cfg.height);
  faults.add(torus, {10, 10});
  const SimResult res = run_simulation(cfg, faults);
  const Counters& c = res.counters;
  EXPECT_GT(c.heard_queued, 0u);
  EXPECT_GT(c.spoofed_sends, 0u);
  EXPECT_EQ(c.committed_queued + c.heard_queued, c.broadcasts_queued);
}

TEST(Counters, MergeSumsAndMaxes) {
  Counters a;
  a.broadcasts_queued = 5;
  a.commits = 2;
  a.last_commit_round = 7;
  a.engine_bytes_peak = 100;
  Counters b;
  b.broadcasts_queued = 3;
  b.envelopes_dropped = 4;
  b.last_commit_round = 4;
  b.engine_bytes_peak = 250;
  a.merge(b);
  EXPECT_EQ(a.broadcasts_queued, 8u);
  EXPECT_EQ(a.commits, 2u);
  EXPECT_EQ(a.envelopes_dropped, 4u);
  EXPECT_EQ(a.last_commit_round, 7);
  EXPECT_EQ(a.engine_bytes_peak, 250u);  // peak merges by max, not sum
}

TEST(Counters, JsonRenderingIsFixedOrder) {
  Counters c;
  c.broadcasts_queued = 1;
  c.commits = 9;
  c.packets_sent = 12;
  c.barrier_wait_us = 77;
  c.last_commit_round = 3;
  c.chaos_drops = 2;
  c.degraded_rounds = 1;
  c.engine_bytes_peak = 4096;
  EXPECT_EQ(to_json(c),
            "{\"broadcasts_queued\":1,\"spoofed_sends\":0,"
            "\"committed_queued\":0,\"heard_queued\":0,"
            "\"retransmission_copies\":0,\"envelopes_delivered\":0,"
            "\"envelopes_dropped\":0,\"commits\":9,\"trial_retries\":0,"
            "\"trial_timeouts\":0,\"trial_failures\":0,"
            "\"packets_sent\":12,\"packets_retransmitted\":0,"
            "\"packets_acked\":0,\"duplicates_dropped\":0,"
            "\"barrier_timeouts\":0,\"barrier_wait_us\":77,"
            "\"chaos_drops\":2,\"chaos_delays\":0,\"chaos_duplicates\":0,"
            "\"chaos_partition_drops\":0,\"node_restarts\":0,"
            "\"peers_suspected\":0,\"degraded_rounds\":1,"
            "\"engine_bytes_peak\":4096,"
            "\"last_commit_round\":3}");
}

TEST(RoundTrace, RingBufferWrapsDeterministically) {
  RoundTrace trace(4);
  trace.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    TraceEvent e;
    e.kind = TraceEventKind::kRoundStarted;
    e.round = i;
    trace.record(e);
  }
  EXPECT_EQ(trace.capacity(), 4u);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.recorded(), 6u);
  EXPECT_EQ(trace.dropped(), 2u);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two were evicted; the rest are in order.
  EXPECT_EQ(events.front().round, 2);
  EXPECT_EQ(events.back().round, 5);

  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_TRUE(trace.enabled());  // clear() keeps the enabled state
}

TEST(RoundTrace, DisabledSinkRecordsNothing) {
  RoundTrace trace(8);
  ASSERT_FALSE(trace.enabled());  // disabled is the default
  TraceEvent e;
  e.kind = TraceEventKind::kNodeCommitted;
  trace.record(e);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.recorded(), 0u);
}

TEST(RoundTrace, RecordNeverAllocates) {
  // The no-allocation contract: after construction, record() writes into the
  // preallocated ring — zero heap traffic whether enabled or disabled, and
  // both below and beyond the wrap-around point.
  RoundTrace trace(64);
  TraceEvent e;
  e.kind = TraceEventKind::kMessageDelivered;
  e.round = 1;
  e.node = {1, 2};
  e.sender = {3, 4};

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) trace.record(e);  // disabled
  trace.set_enabled(true);
  for (int i = 0; i < 1000; ++i) trace.record(e);  // enabled, wraps 15x
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_EQ(trace.recorded(), 1000u);
}

TEST(RoundTrace, DisabledTrialLeavesSinkUntouchedAndUnallocated) {
  // A full trial run with a sink attached but *disabled* must not touch it:
  // every network emission site either skips on the pointer test or bails at
  // record()'s enabled check, so the sink sees zero events and performs zero
  // allocations after construction. The sink's post-construction allocation
  // count is pinned via the global operator new counter: RoundTrace holds no
  // state besides its preallocated ring, so if it never records it cannot be
  // the source of any allocation — we assert the observable half (no events)
  // on a real network run, and the no-allocation half on the sink directly.
  const SimConfig cfg = crash_flood_cfg();
  RadioNetwork net(Torus(cfg.width, cfg.height), cfg.r, cfg.metric, cfg.seed);
  RoundTrace sink(256);
  ASSERT_FALSE(sink.enabled());
  net.set_trace(&sink);
  const Torus& torus = net.torus();
  for (const Coord c : torus.all_coords()) {
    if (c == Coord{0, 0}) {
      net.set_behavior(c, std::make_unique<SourceBehavior>(1));
    } else {
      net.set_behavior(
          c, std::make_unique<CrashFloodBehavior>(ProtocolParams{0, {0, 0}}));
    }
  }
  net.start();
  const std::uint64_t before = g_allocations.load();
  sink.record(TraceEvent{});  // direct disabled record: no allocation
  EXPECT_EQ(g_allocations.load(), before);
  net.run_until_quiescent(1000);
  EXPECT_GT(net.counters().commits, 0u);      // the trial really ran
  EXPECT_EQ(sink.size(), 0u);                 // ...and never touched the sink
  EXPECT_EQ(sink.recorded(), 0u);
}

TEST(RoundTrace, JsonlRendering) {
  TraceEvent started;
  started.kind = TraceEventKind::kRoundStarted;
  started.round = 3;
  EXPECT_EQ(to_jsonl(started), "{\"event\":\"round_started\",\"round\":3}");

  TraceEvent committed;
  committed.kind = TraceEventKind::kNodeCommitted;
  committed.round = 4;
  committed.node = {3, 0};
  committed.value = 1;
  EXPECT_EQ(to_jsonl(committed),
            "{\"event\":\"node_committed\",\"round\":4,\"node\":[3,0],"
            "\"value\":1}");

  TraceEvent delivered;
  delivered.kind = TraceEventKind::kMessageDelivered;
  delivered.round = 2;
  delivered.node = {1, 1};
  delivered.sender = {0, 0};
  delivered.origin = {0, 0};
  delivered.value = 0;
  delivered.msg_type = 1;
  EXPECT_EQ(to_jsonl(delivered),
            "{\"event\":\"message_delivered\",\"round\":2,\"sender\":[0,0],"
            "\"receiver\":[1,1],\"type\":\"HEARD\",\"origin\":[0,0],"
            "\"value\":0}");

  RoundTrace trace(4);
  trace.set_enabled(true);
  trace.record(started);
  trace.record(committed);
  std::ostringstream os;
  trace.write_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"event\":\"round_started\",\"round\":3}\n"
            "{\"event\":\"node_committed\",\"round\":4,\"node\":[3,0],"
            "\"value\":1}\n");
}

TEST(RoundTrace, TracedTrialIsDeterministic) {
  // Two runs of the same config produce identical event streams, and the
  // stream contains all three event kinds in simulation order.
  const SimConfig cfg = crash_flood_cfg();
  RoundTrace t1, t2;
  ObsOptions obs1{&t1}, obs2{&t2};
  run_simulation(cfg, FaultSet{}, obs1);
  run_simulation(cfg, FaultSet{}, obs2);
  EXPECT_GT(t1.size(), 0u);
  EXPECT_EQ(t1.events(), t2.events());

  const auto events = t1.events();
  // The source's round-0 commit precedes the first round_started.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, TraceEventKind::kNodeCommitted);
  EXPECT_EQ(events.front().round, 0);
  bool saw_round = false, saw_delivery = false;
  std::int64_t last_round = 0;
  for (const TraceEvent& e : events) {
    saw_round |= e.kind == TraceEventKind::kRoundStarted;
    saw_delivery |= e.kind == TraceEventKind::kMessageDelivered;
    EXPECT_GE(e.round, last_round);  // rounds never go backwards
    last_round = e.round;
  }
  EXPECT_TRUE(saw_round);
  EXPECT_TRUE(saw_delivery);
}

TEST(PhaseTimers, TrialFillsAllPhases) {
  const SimConfig cfg = crash_flood_cfg();
  const SimResult res = run_simulation(cfg, FaultSet{});
  EXPECT_GE(res.timers.setup_seconds, 0.0);
  EXPECT_GE(res.timers.rounds_seconds, 0.0);
  EXPECT_GE(res.timers.verdict_seconds, 0.0);
  EXPECT_DOUBLE_EQ(res.timers.total_seconds(),
                   res.timers.setup_seconds + res.timers.rounds_seconds +
                       res.timers.verdict_seconds);
  // The rounds phase did real work; on any sane clock it is measurable
  // strictly somewhere (total > 0 may be flaky on coarse clocks, so only
  // assert non-negativity plus the sum identity above).
}

TEST(PhaseTimers, MergeSumsPhaseByPhase) {
  PhaseTimers a{1.0, 2.0, 3.0};
  const PhaseTimers b{0.5, 0.25, 0.125};
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.setup_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.rounds_seconds, 2.25);
  EXPECT_DOUBLE_EQ(a.verdict_seconds, 3.125);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 6.875);
}

}  // namespace
}  // namespace rbcast
