// Event-loop runtime tests (runtime/event_loop.h, runtime/swarm.h): the
// hashed timer wheel under a fake clock, epoll readiness wakeups against
// real sockets, SwarmHub shared-socket multiplexing (routing, identity,
// spoof rejection, fd budget), and the perfect-link / barrier properties
// driven end-to-end through the epoll backend under datagram chaos.

#include "radiobcast/runtime/event_loop.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "radiobcast/runtime/harness.h"
#include "radiobcast/runtime/perfect_link.h"
#include "radiobcast/runtime/scenario.h"
#include "radiobcast/runtime/swarm.h"
#include "radiobcast/runtime/transport.h"

namespace rbcast {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using TimePoint = std::chrono::steady_clock::time_point;

// ---------------------------------------------------------------------------
// Backend name plumbing

TEST(RuntimeBackend, RoundTripsThroughStrings) {
  EXPECT_EQ(backend_from_string("poll"), RuntimeBackend::kPoll);
  EXPECT_EQ(backend_from_string("epoll"), RuntimeBackend::kEpoll);
  EXPECT_FALSE(backend_from_string("kqueue").has_value());
  EXPECT_STREQ(to_string(RuntimeBackend::kPoll), "poll");
  EXPECT_STREQ(to_string(RuntimeBackend::kEpoll), "epoll");
}

// ---------------------------------------------------------------------------
// TimerWheel under a fake clock (explicit time points, no sleeping)

TEST(TimerWheel, FiresDueTimersInDeadlineOrder) {
  TimerWheel wheel(microseconds(1000), 16);
  const TimePoint t0{};
  std::vector<std::uint64_t> fired;
  wheel.schedule(3, t0 + milliseconds(5));
  wheel.schedule(1, t0 + milliseconds(2));
  wheel.schedule(2, t0 + milliseconds(9));
  EXPECT_EQ(wheel.armed(), 3u);

  wheel.advance(t0 + milliseconds(1), fired);
  EXPECT_TRUE(fired.empty());

  wheel.advance(t0 + milliseconds(6), fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(wheel.armed(), 1u);

  fired.clear();
  wheel.advance(t0 + milliseconds(20), fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  const TimePoint t0{};
  wheel.schedule(7, t0 + milliseconds(3));
  EXPECT_TRUE(wheel.cancel(7));
  EXPECT_FALSE(wheel.cancel(7));  // already disarmed
  std::vector<std::uint64_t> fired;
  wheel.advance(t0 + milliseconds(10), fired);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, RescheduleIsAnUpsert) {
  TimerWheel wheel;
  const TimePoint t0{};
  wheel.schedule(5, t0 + milliseconds(2));
  wheel.schedule(5, t0 + milliseconds(8));  // push the deadline out
  EXPECT_EQ(wheel.armed(), 1u);
  std::vector<std::uint64_t> fired;
  wheel.advance(t0 + milliseconds(4), fired);
  EXPECT_TRUE(fired.empty()) << "the stale slot entry must not fire";
  wheel.advance(t0 + milliseconds(9), fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{5}));
}

TEST(TimerWheel, NextDeadlineTracksTheEarliestArmedTimer) {
  TimerWheel wheel;
  const TimePoint t0{};
  EXPECT_FALSE(wheel.next_deadline().has_value());
  wheel.schedule(1, t0 + milliseconds(9));
  wheel.schedule(2, t0 + milliseconds(4));
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), t0 + milliseconds(4));
  wheel.cancel(2);
  EXPECT_EQ(*wheel.next_deadline(), t0 + milliseconds(9));
}

TEST(TimerWheel, DeadlinesBeyondOneLapStillFireAtTheRightTime) {
  // 16 slots x 1ms tick = a 16ms lap; a 50ms deadline wraps three laps and
  // must not fire on the earlier passes over its slot.
  TimerWheel wheel(microseconds(1000), 16);
  const TimePoint t0{};
  wheel.schedule(1, t0 + milliseconds(50));
  std::vector<std::uint64_t> fired;
  for (int ms = 1; ms <= 49; ++ms) {
    wheel.advance(t0 + milliseconds(ms), fired);
    ASSERT_TRUE(fired.empty()) << "fired early at +" << ms << "ms";
  }
  wheel.advance(t0 + milliseconds(50), fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));
}

TEST(TimerWheel, PastDeadlinesFireOnTheNextAdvance) {
  TimerWheel wheel(microseconds(1000), 16);
  const TimePoint t0{};
  std::vector<std::uint64_t> fired;
  wheel.advance(t0 + milliseconds(100), fired);  // establish "now"
  wheel.schedule(1, t0 + milliseconds(1));       // long past
  wheel.advance(t0 + milliseconds(100), fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));
}

TEST(TimerWheel, SparseAdvanceAcrossManyLapsFiresEverything) {
  TimerWheel wheel(microseconds(1000), 8);
  const TimePoint t0{};
  for (std::uint64_t id = 0; id < 20; ++id) {
    wheel.schedule(id, t0 + milliseconds(1 + static_cast<int>(id) * 7));
  }
  std::vector<std::uint64_t> fired;
  wheel.advance(t0 + milliseconds(1000), fired);  // one giant step
  EXPECT_EQ(fired.size(), 20u);
  EXPECT_EQ(wheel.armed(), 0u);
}

// ---------------------------------------------------------------------------
// EventLoop readiness against real sockets

TEST(EventLoop, WakesOnSocketReadiness) {
  UdpTransport a(0), b(0);
  a.set_peers({a.local_port(), b.local_port()});
  b.set_peers({a.local_port(), b.local_port()});
  b.send(0, {1, 2, 3});
  // The datagram may already be queued when wait starts — EPOLL_CTL_ADD
  // reports current readiness, so this must return well before the deadline.
  const auto start = std::chrono::steady_clock::now();
  a.wait(start + std::chrono::seconds(5));
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(2));
  Datagram d;
  ASSERT_TRUE(a.try_receive(d));
  EXPECT_EQ(d.from, 1u);
  EXPECT_EQ(d.bytes, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(EventLoop, IdleWaitRespectsTheDeadline) {
  UdpTransport a(0);
  a.set_peers({a.local_port()});
  const auto start = std::chrono::steady_clock::now();
  a.wait(start + milliseconds(50));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, milliseconds(40));  // slept, didn't spin
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(EventLoop, PastDeadlineReturnsImmediately) {
  UdpTransport a(0);
  a.set_peers({a.local_port()});
  const auto start = std::chrono::steady_clock::now();
  a.wait(start - milliseconds(5));
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(1));
}

// ---------------------------------------------------------------------------
// SwarmHub: shared-socket multiplexing

TEST(SwarmHub, RoutesMemberTrafficInMemoryWithSenderIdentity) {
  SwarmHub hub(4);
  auto t0 = hub.transport(0);
  auto t3 = hub.transport(3);
  t0->send(3, {9, 9});
  Datagram d;
  ASSERT_TRUE(t3->try_receive(d));
  EXPECT_EQ(d.from, 0u);
  EXPECT_EQ(d.bytes, (std::vector<std::uint8_t>{9, 9}));
  EXPECT_FALSE(t3->try_receive(d));
  EXPECT_THROW(hub.transport(4), std::out_of_range);
}

TEST(SwarmHub, WaitWakesAcrossThreadsOnDelivery) {
  SwarmHub hub(2);
  auto rx = hub.transport(1);
  std::thread receiver([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    Datagram d;
    while (!rx->try_receive(d)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "never woke";
      rx->wait(deadline);
    }
    EXPECT_EQ(d.from, 0u);
  });
  std::this_thread::sleep_for(milliseconds(20));
  hub.transport(0)->send(1, {42});
  receiver.join();
}

TEST(SwarmHub, RoutesRemoteTrafficBetweenHubsAndRejectsSpoofedSenders) {
  // Node 0 lives on hub A, node 1 on hub B; the same peer-port table on both
  // sides makes each hub treat the other's node as remote.
  SwarmHub hub_a(2), hub_b(2);
  const std::vector<std::uint16_t> ports{hub_a.local_port(),
                                         hub_b.local_port()};
  hub_a.set_peers(ports);
  hub_b.set_peers(ports);
  auto ta = hub_a.transport(0);
  auto tb = hub_b.transport(1);

  ta->send(1, {7, 7, 7});
  Datagram d;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!tb->try_receive(d)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "never arrived";
    tb->wait(std::chrono::steady_clock::now() + milliseconds(1));
  }
  EXPECT_EQ(d.from, 0u);
  EXPECT_EQ(d.bytes, (std::vector<std::uint8_t>{7, 7, 7}));

  // A third party claiming to be node 0: correct mux header, wrong source
  // port. The hub must drop it at the identity check.
  UdpTransport rogue(0);
  rogue.set_peers({hub_b.local_port()});
  rogue.send(0, {0, 0, 0, 0, 1, 0, 0, 0, 66});  // [from=0][to=1][payload]
  ta->send(1, {8});  // legitimate chaser so the receive loop terminates
  while (!tb->try_receive(d)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    tb->wait(std::chrono::steady_clock::now() + milliseconds(1));
  }
  EXPECT_EQ(d.bytes, (std::vector<std::uint8_t>{8}))
      << "the spoofed datagram must never surface";
  EXPECT_FALSE(tb->try_receive(d));
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for (const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)e;
    ++n;
  }
  return n;
}

TEST(SwarmHub, A256NodeSwarmCostsOneFileDescriptor) {
  const std::size_t before = open_fd_count();
  SwarmHub hub(256);
  std::vector<std::unique_ptr<Transport>> transports;
  for (std::uint32_t i = 0; i < 256; ++i) {
    transports.push_back(hub.transport(i));
  }
  // One shared socket (plus the directory iterator's own transient fd, gone
  // by the time we count).
  EXPECT_EQ(open_fd_count(), before + 1);
  transports[17]->send(201, {5});
  Datagram d;
  ASSERT_TRUE(transports[201]->try_receive(d));
  EXPECT_EQ(d.from, 17u);
}

// ---------------------------------------------------------------------------
// Perfect-link properties driven through the epoll backend under chaos

TEST(EpollLinkProperties, NoLossNoDupFifoUnderHeavyDatagramChaos) {
  constexpr int kMessages = 150;
  UdpTransport ua(0), ub(0);
  const std::vector<std::uint16_t> ports{ua.local_port(), ub.local_port()};
  ua.set_peers(ports);
  ub.set_peers(ports);
  ChaosOptions copts;
  copts.drop_p = 0.3;
  copts.duplicate_p = 0.3;
  copts.delay_p = 0.2;
  copts.delay = milliseconds(2);
  copts.seed = 20260809;
  ChaosTransport ca(0, ua, copts), cb(1, ub, copts);
  PerfectLink::Options lopts;
  lopts.initial_rto = milliseconds(2);
  lopts.max_rto = milliseconds(20);
  PerfectLink a(0, ca, lopts), b(1, cb, lopts);

  for (int i = 0; i < kMessages; ++i) {
    WireMessage wm;
    wm.kind = WireKind::kRoundDone;
    wm.round = i;
    wm.done_count = static_cast<std::uint32_t>(i);
    a.send(1, wm);
    b.send(0, wm);
  }
  a.flush();
  b.flush();

  std::vector<ReceivedMessage> rx_a, rx_b;
  std::vector<std::int64_t> got_a, got_b;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (static_cast<int>(got_a.size()) < kMessages ||
         static_cast<int>(got_b.size()) < kMessages) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "links failed to converge: a=" << got_a.size()
        << " b=" << got_b.size();
    rx_a.clear();
    rx_b.clear();
    a.poll(rx_a);
    b.poll(rx_b);
    const auto now = std::chrono::steady_clock::now();
    a.tick(now);
    b.tick(now);
    for (const ReceivedMessage& m : rx_a) got_a.push_back(m.msg.round);
    for (const ReceivedMessage& m : rx_b) got_b.push_back(m.msg.round);
    // Single thread drives both endpoints, so waits are sliced: block on
    // a's readiness bounded by the earliest retransmission either side owes.
    auto cap = now + milliseconds(1);
    if (const auto d = a.next_deadline(); d.has_value() && *d < cap) cap = *d;
    if (const auto d = b.next_deadline(); d.has_value() && *d < cap) cap = *d;
    ca.wait(cap);
  }
  // Linger: delivery completing does not mean the final acks landed (chaos
  // drops those too); keep the link alive until both sides retire all
  // in-flight traffic — the same drain a RuntimeNode performs.
  while (!a.all_acked() || !b.all_acked()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "acks failed to converge";
    rx_a.clear();
    rx_b.clear();
    a.poll(rx_a);
    b.poll(rx_b);
    EXPECT_TRUE(rx_a.empty() && rx_b.empty()) << "late duplicate delivery";
    const auto now = std::chrono::steady_clock::now();
    a.tick(now);
    b.tick(now);
    auto cap = now + milliseconds(1);
    if (const auto d = a.next_deadline(); d.has_value() && *d < cap) cap = *d;
    if (const auto d = b.next_deadline(); d.has_value() && *d < cap) cap = *d;
    ca.wait(cap);
  }
  // No loss, no duplication, per-sender FIFO: each side saw exactly
  // 0..kMessages-1 in order.
  ASSERT_EQ(got_a.size(), static_cast<std::size_t>(kMessages));
  ASSERT_EQ(got_b.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got_a[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(got_b[static_cast<std::size_t>(i)], i);
  }
  EXPECT_TRUE(a.all_acked());
  EXPECT_TRUE(b.all_acked());
}

// ---------------------------------------------------------------------------
// Barrier soaks: a full deployment on the epoll backend never wedges

TEST(EpollBarrierSoak, DeploymentSurvivesHeavyChaosWithNoTimeout) {
  // round_timeout 0 = wait forever: the only way this test passes is the
  // barrier actually opening every round under drop/dup/delay chaos.
  const Scenario scenario = parse_scenario_string(R"(
    protocol crash-flood
    adversary silent
    width 4
    height 4
    r 1
    metric linf
    t 1
    value 1
    source 0 0
    seed 7
    backend epoll
    round_timeout_ms 0
    chaos_drop_p 0.25
    chaos_dup_p 0.25
    chaos_delay_p 0.25
    chaos_delay_ms 1
    fault 2 2
  )");
  const RuntimeResult result = run_scenario_threads(scenario);
  EXPECT_TRUE(result.success())
      << "correct " << result.correct_commits << "/" << result.honest_nodes
      << ", wrong " << result.wrong_commits;
  EXPECT_EQ(result.counters.barrier_timeouts, 0u);
  EXPECT_GT(result.counters.chaos_drops, 0u);
  EXPECT_GT(result.round_latency.count(), 0u);
}

TEST(EpollBarrierSoak, PermanentPartitionDegradesButNeverWedges) {
  // One directed link is blacked out forever; the victim must suspect the
  // silent peer via timeout+backoff and keep making rounds. Completing at
  // all is the wedge-freedom property; correctness rides along.
  const Scenario scenario = parse_scenario_string(R"(
    protocol crash-flood
    adversary silent
    width 4
    height 4
    r 1
    metric linf
    t 1
    value 1
    source 0 0
    seed 11
    backend epoll
    round_timeout_ms 100
    suspect_after 2
    partition 1 0 0 0 0 -1
    fault 2 2
  )");
  const RuntimeResult result = run_scenario_threads(scenario);
  EXPECT_EQ(result.wrong_commits, 0);
  EXPECT_EQ(result.correct_commits, result.honest_nodes);
  EXPECT_GT(result.counters.barrier_timeouts, 0u);
  EXPECT_GT(result.counters.chaos_partition_drops, 0u);
  EXPECT_TRUE(result.degraded());
  EXPECT_TRUE(result.degraded_correct());
}

TEST(EpollBarrierSoak, SharedSocketSwarmCompletesUnderChaos) {
  // The swarm path end-to-end: every node on one SwarmHub socket, epoll
  // waits on mailbox condvars, chaos on top.
  const Scenario scenario = parse_scenario_string(R"(
    protocol crash-flood
    adversary silent
    width 6
    height 6
    r 1
    metric linf
    t 2
    value 1
    source 0 0
    seed 13
    backend epoll
    shared_socket 1
    round_timeout_ms 0
    chaos_drop_p 0.2
    chaos_dup_p 0.2
    fault 2 2
    fault 4 4
  )");
  const RuntimeResult result = run_scenario_threads(scenario);
  EXPECT_TRUE(result.success())
      << "correct " << result.correct_commits << "/" << result.honest_nodes
      << ", wrong " << result.wrong_commits;
  EXPECT_GT(result.commit_latency.count(), 0u);
}

}  // namespace
}  // namespace rbcast
